// Online shard handoff: seal → drain → export → ship → ratify → redirect.
//
// The old primary seals the shard (new client ops park), drains the
// replication pipeline so the backup's state equals its own, exports the
// shard's directory snapshot (gdo.Export), and ships it to the target with
// the proposed next map (epoch+1, Primary = target, Backup unchanged —
// valid because the drained backup already matches the snapshot). The
// target imports the state but activates only after the shard's backup —
// acting as the epoch witness — ratifies the proposed map. Ratification is
// first-proposal-wins (see epochChangeLocked), which also serializes
// activation against cancellation: an old primary that loses contact with
// the target proposes a cancel map through the same witness, and whichever
// proposal lands first decides the shard's fate. Parked operations are
// replayed on cancel and redirected via RouteResp on completion — in
// either case never dropped.

package directory

import (
	"time"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/stats"
	"lotec/internal/wire"
)

// handoffState tracks one in-progress outbound handoff at the old primary.
type handoffState struct {
	target     ids.NodeID
	start      time.Duration
	stateBytes int
	shipped    bool
	cancelMap  wire.PlacementMap
	done       func(wire.Msg)
}

// handoffStartLocked begins an outbound handoff at the shard's current
// primary. Ownership is by the host's own map (the request is epoch-free:
// it is an operator command, not client traffic).
func (h *Host) handoffStartLocked(a *acts, t *wire.HandoffStartReq, reply func(wire.Msg)) {
	shard := int(t.Shard)
	rep := h.ownerLocked(shard, h.cur.Epoch)
	if rep == nil {
		a.reply(reply, &wire.HandoffStartResp{OK: false, Map: h.cur.Clone()})
		return
	}
	if t.Target == h.self {
		// Degenerate move to self: nothing to transfer.
		a.reply(reply, &wire.HandoffStartResp{OK: true, Map: h.cur.Clone()})
		return
	}
	if rep.sealed || rep.handoff != nil {
		// One transfer at a time per shard.
		a.reply(reply, &wire.HandoffStartResp{OK: false, Map: h.cur.Clone()})
		return
	}
	rep.sealed = true
	rep.handoff = &handoffState{target: t.Target, start: h.env.Now(), done: reply}
	h.maybeShipLocked(a, rep)
}

// maybeShipLocked ships the snapshot once the shard is sealed and the
// replication pipeline has drained (so backup state == exported state).
func (h *Host) maybeShipLocked(a *acts, rep *replica) {
	ho := rep.handoff
	if ho == nil || ho.shipped || !rep.sealed || len(rep.queue) > 0 || rep.inflight {
		return
	}
	ho.shipped = true
	state := rep.dir.Export()
	ho.stateBytes = len(state)
	next := h.cur.Clone()
	next.Epoch++
	next.Primary[rep.shard] = ho.target
	h.reqCtr++
	req := &wire.HandoffReq{
		ReqID: h.reqCtr,
		Shard: int32(rep.shard),
		Seq:   rep.seq,
		Map:   next,
		State: state,
	}
	shard := rep.shard
	target := ho.target
	a.proc(func() {
		resp, err := h.env.Call(target, req)
		h.onHandoffShipped(shard, resp, err)
	})
}

// onHandoffShipped is the continuation of the HandoffReq at the old
// primary: on success adopt the ratified map (deposing ourselves and
// redirecting parked ops), on refusal adopt the winner's map, on
// unreachable target cancel through the witness.
func (h *Host) onHandoffShipped(shard int, resp wire.Msg, err error) {
	a := &acts{h: h}
	h.mu.Lock()
	rep := h.reps[shard]
	if rep == nil || rep.handoff == nil {
		h.mu.Unlock()
		a.run()
		return
	}
	ho := rep.handoff
	hr, isHR := resp.(*wire.HandoffResp)
	switch {
	case err == nil && isHR && hr.OK:
		// Target active. Answer the operator first, then adopt — adoption
		// deposes this replica and redirects its parked ops.
		latency := h.env.Now() - ho.start
		rep.handoff = nil
		a.reply(ho.done, &wire.HandoffStartResp{
			OK:         true,
			StateBytes: uint64(ho.stateBytes),
			Map:        hr.Map.Clone(),
		})
		if h.rec != nil {
			h.rec.AddHandoff(stats.HandoffSample{Shard: shard, Bytes: ho.stateBytes, Latency: latency})
		}
		h.adoptLocked(a, hr.Map)
	case err == nil && isHR:
		// Target refused (lost an epoch race, or a newer map exists).
		rep.handoff = nil
		h.adoptLocked(a, hr.Map)
		if h.reps[shard] == rep && rep.primary {
			h.unsealLocked(a, rep)
		}
		a.reply(ho.done, &wire.HandoffStartResp{OK: false, Map: h.cur.Clone()})
	default:
		// Target unreachable (or answered garbage): cancel through the
		// witness so activation-vs-cancel is serialized by one actor.
		h.cancelHandoffLocked(a, rep)
	}
	h.mu.Unlock()
	a.run()
}

// cancelHandoffLocked proposes a cancel map (epoch+1, ownership
// unchanged) through the shard's witness. With no witness there is no
// racing proposal to lose to, so the shard simply unseals.
func (h *Host) cancelHandoffLocked(a *acts, rep *replica) {
	ho := rep.handoff
	witness := h.cur.Backup[rep.shard]
	if witness == ids.NoNode || witness == h.self || rep.backupDown {
		rep.handoff = nil
		h.unsealLocked(a, rep)
		a.reply(ho.done, &wire.HandoffStartResp{OK: false, Map: h.cur.Clone()})
		return
	}
	ho.cancelMap = h.cur.Clone()
	ho.cancelMap.Epoch++
	h.reqCtr++
	req := &wire.EpochChangeReq{ReqID: h.reqCtr, Map: ho.cancelMap.Clone()}
	shard := rep.shard
	a.proc(func() {
		resp, err := h.env.Call(witness, req)
		h.onHandoffCanceled(shard, resp, err)
	})
}

// onHandoffCanceled resolves the cancel proposal: accepted means the
// handoff never happened (unseal and replay parked ops under the cancel
// epoch); refused means the target's activation won (adopt its map, which
// deposes us and redirects everything).
func (h *Host) onHandoffCanceled(shard int, resp wire.Msg, err error) {
	a := &acts{h: h}
	h.mu.Lock()
	rep := h.reps[shard]
	if rep == nil || rep.handoff == nil {
		h.mu.Unlock()
		a.run()
		return
	}
	ho := rep.handoff
	rep.handoff = nil
	if ec, ok := resp.(*wire.EpochChangeResp); err == nil && ok {
		h.adoptLocked(a, ec.Map)
	}
	// Witness unreachable too: both the target and the witness are out of
	// reach — outside the single-failure budget. Unseal at the current
	// epoch so local shards stay live; a surviving ratified map, if any,
	// reaches us through the normal RouteResp/ReplicateResp channels.
	if h.reps[shard] == rep && rep.primary {
		h.unsealLocked(a, rep)
		h.markEdgesDirtyLocked(a)
	}
	a.reply(ho.done, &wire.HandoffStartResp{OK: false, Map: h.cur.Clone()})
	h.mu.Unlock()
	a.run()
}

// unsealLocked reopens a sealed shard and replays its parked operations
// through the normal front door.
func (h *Host) unsealLocked(a *acts, rep *replica) {
	rep.sealed = false
	parked := rep.parked
	rep.parked = nil
	h.replayParkedLocked(a, parked)
}

// handoffRecvLocked is the target side: import the snapshot, have the
// witness ratify the proposed map, then activate. The reply is deferred
// until ratification resolves (hence the async handler).
func (h *Host) handoffRecvLocked(a *acts, t *wire.HandoffReq, reply func(wire.Msg)) {
	shard := int(t.Shard)
	if shard < 0 || shard >= t.Map.NumShards() || t.Map.Primary[shard] != h.self {
		a.reply(reply, &wire.ErrResp{Msg: "directory: handoff misaddressed"})
		return
	}
	if rep := h.reps[shard]; rep != nil && rep.primary && h.cur.Epoch >= t.Map.Epoch {
		// Re-delivery after a completed activation.
		a.reply(reply, &wire.HandoffResp{OK: true, Map: h.cur.Clone()})
		return
	}
	if t.Map.Epoch <= h.cur.Epoch {
		// A newer map exists; this transfer is already stale.
		a.reply(reply, &wire.HandoffResp{OK: false, Map: h.cur.Clone()})
		return
	}
	dir, err := gdo.Import(t.State)
	if err != nil {
		a.reply(reply, &wire.ErrResp{Msg: "directory: handoff state corrupt: " + err.Error()})
		return
	}
	witness := t.Map.Backup[shard]
	if witness == ids.NoNode || witness == h.self {
		if !h.activateLocked(a, shard, t, dir) {
			a.reply(reply, &wire.HandoffResp{OK: false, Map: h.cur.Clone()})
			return
		}
		a.reply(reply, &wire.HandoffResp{OK: true, Map: h.cur.Clone()})
		return
	}
	h.reqCtr++
	req := &wire.EpochChangeReq{ReqID: h.reqCtr, Map: t.Map.Clone()}
	a.proc(func() {
		resp, err := h.env.Call(witness, req)
		h.onHandoffRatified(t, dir, resp, err, reply)
	})
}

// onHandoffRatified activates the imported shard if the witness accepted
// the proposed map, and refuses the transfer otherwise.
func (h *Host) onHandoffRatified(t *wire.HandoffReq, dir *gdo.Directory, resp wire.Msg, err error, reply func(wire.Msg)) {
	a := &acts{h: h}
	h.mu.Lock()
	ec, ok := resp.(*wire.EpochChangeResp)
	switch {
	case err != nil || !ok:
		a.reply(reply, &wire.HandoffResp{OK: false, Map: h.cur.Clone()})
	case !ec.OK:
		// Lost the proposal race (e.g. to the old primary's cancel).
		h.adoptLocked(a, ec.Map)
		a.reply(reply, &wire.HandoffResp{OK: false, Map: h.cur.Clone()})
	default:
		if h.activateLocked(a, int(t.Shard), t, dir) {
			a.reply(reply, &wire.HandoffResp{OK: true, Map: h.cur.Clone()})
		} else {
			a.reply(reply, &wire.HandoffResp{OK: false, Map: h.cur.Clone()})
		}
	}
	h.mu.Unlock()
	a.run()
}

// activateLocked installs the transferred shard as a live primary replica
// under the ratified map.
func (h *Host) activateLocked(a *acts, shard int, t *wire.HandoffReq, dir *gdo.Directory) bool {
	if t.Map.Epoch > h.cur.Epoch {
		h.adoptLocked(a, t.Map)
	} else if !t.Map.Equal(h.cur) {
		return false
	}
	h.reps[shard] = &replica{shard: shard, dir: dir, primary: true, seq: t.Seq}
	h.markEdgesDirtyLocked(a)
	return true
}
