// Package directory implements the *partitioned* Global Directory of
// Objects the paper describes in §4.1 ("the GDO may be partitioned and
// replicated for scalability and reliability"). Package gdo keeps one
// object's worth of directory logic — Figure 1 entries, Algorithm 4.2
// acquisition and Algorithm 4.4 release — in a single structure guarded by
// a single mutex; this package scales it out: a Sharded directory is N
// independent gdo.Directory instances, each owning the lock state and page
// map of the objects that home to it, fronted by a thin router that
// preserves the gdo.Directory-shaped API so the node engine, the
// simulation, and the TCP deployment switch over without protocol changes.
//
// Three concerns span shards and live in the router:
//
//   - Placement: deterministic object→shard assignment (ShardOf), kept
//     consistent with the cost model's object→home-node assignment
//     (HomeNode) so the simulation charges global lock traffic to the same
//     partition the deployment would consult.
//   - Commit order: strict nested O2PL serializes committed families in
//     release-arrival order; with the lock state split, the router assigns
//     the global sequence numbers (one short critical section per
//     committing release — never on the acquire path).
//   - Inter-family deadlock detection across shards: each shard detects
//     cycles among its own waiters exactly as before, and additionally
//     exports a waits-for edge summary (gdo.WaitEdges); the router unions
//     the summaries and searches the combined graph, so a cycle whose
//     edges straddle shards is still found and the youngest family on it
//     is still the victim. See detect.go.
//
// With one shard the router degenerates to pure delegation: no extra
// locking, no cross-shard passes, byte-identical behaviour to the single
// gdo.Directory it wraps.
package directory

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// Service is the directory API the rest of the system programs against —
// exactly the shape of *gdo.Directory, which satisfies it, as does
// *Sharded. The node engine, the simulation cluster and the TCP GDO server
// all accept a Service, so a deployment picks its partitioning by
// construction, not by code changes.
type Service interface {
	Register(obj ids.ObjectID, numPages int, owner ids.NodeID) error
	NumPages(obj ids.ObjectID) (int, error)
	Objects() []ids.ObjectID
	State(obj ids.ObjectID) (gdo.LockState, error)
	ReadCount(obj ids.ObjectID) (int, error)
	PageMap(obj ids.ObjectID) ([]gdo.PageLoc, error)
	CopySet(obj ids.ObjectID) ([]ids.NodeID, error)
	CommitSeq(f ids.FamilyID) (uint64, bool)
	LastWriter(obj ids.ObjectID) (ids.NodeID, error)
	Acquire(obj ids.ObjectID, ref ids.TxRef, family ids.FamilyID, age uint64, site ids.NodeID, mode o2pl.Mode) (gdo.AcquireResult, []gdo.Event, error)
	Release(family ids.FamilyID, site ids.NodeID, commit bool, rels []gdo.ObjectRelease) ([]gdo.Event, []gdo.PageStamp, error)
	CancelRequest(obj ids.ObjectID, family ids.FamilyID) (bool, error)
	DebugDump() string
}

// Compile-time checks: the single directory and the sharded router expose
// the same service.
var (
	_ Service = (*gdo.Directory)(nil)
	_ Service = (*Sharded)(nil)
)

// Placement is the deterministic object→partition assignment shared by
// every process of a deployment. Shards is the number of directory
// partitions; Nodes is the cluster size the cost model attributes global
// messages to.
type Placement struct {
	Shards int
	Nodes  int
}

// NewPlacement normalizes a placement (both counts at least 1).
func NewPlacement(shards, nodes int) Placement {
	if shards < 1 {
		shards = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	return Placement{Shards: shards, Nodes: nodes}
}

// ShardOf returns the directory partition owning obj's lock state and page
// map. It extends the cost model's HomeNode hashing: when Shards == Nodes
// the objects homed at one node form exactly one shard, so the cost model
// and the real partitioning agree.
//
//lotec:noalloc
func (p Placement) ShardOf(obj ids.ObjectID) int {
	s := int(int64(obj) % int64(p.Shards))
	if s < 0 {
		s += p.Shards
	}
	return s
}

// HomeNode returns the node global lock messages for obj are charged to —
// unchanged from gdo.Directory.HomeNode, so per-object message attribution
// (Figures 6–8 re-pricing) is identical at every shard count.
//
//lotec:noalloc
func (p Placement) HomeNode(obj ids.ObjectID) ids.NodeID {
	h := int64(obj) % int64(p.Nodes)
	if h < 0 {
		h += int64(p.Nodes)
	}
	return ids.NodeID(h) + 1
}

// Sharded is the partitioned Global Directory of Objects: a router over
// Placement.Shards independent gdo.Directory partitions. Acquires and
// releases on objects of different shards never contend on a shared mutex;
// the only router-level critical section is global commit-order assignment
// on committing releases. It is safe for concurrent use.
type Sharded struct {
	place  Placement
	shards []*gdo.Directory

	// Commit-order bookkeeping (see package doc); the acquire path never
	// takes mu.
	mu          sync.Mutex
	commitSeq   uint64                  // guarded by mu
	commitOrder map[ids.FamilyID]uint64 // guarded by mu
}

// NewSharded returns an empty sharded directory with the given number of
// partitions for a cluster of nodes sites.
func NewSharded(shards, nodes int) *Sharded {
	p := NewPlacement(shards, nodes)
	s := &Sharded{
		place:       p,
		shards:      make([]*gdo.Directory, p.Shards),
		commitOrder: make(map[ids.FamilyID]uint64),
	}
	for i := range s.shards {
		s.shards[i] = gdo.New(p.Nodes)
	}
	return s
}

// The accessors below sit on every acquire/release route; none may
// allocate.
//
//lotec:noalloc
func (s *Sharded) Placement() Placement { return s.place }

// NumShards returns the partition count.
//
//lotec:noalloc
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf returns the partition owning obj.
//
//lotec:noalloc
func (s *Sharded) ShardOf(obj ids.ObjectID) int { return s.place.ShardOf(obj) }

// HomeNode returns the node obj's global lock messages are charged to.
//
//lotec:noalloc
func (s *Sharded) HomeNode(obj ids.ObjectID) ids.NodeID { return s.place.HomeNode(obj) }

// Shard exposes one partition (tests and diagnostics).
//
//lotec:noalloc
func (s *Sharded) Shard(i int) *gdo.Directory { return s.shards[i] }

// shardFor routes an object to its partition.
//
//lotec:noalloc
func (s *Sharded) shardFor(obj ids.ObjectID) *gdo.Directory {
	return s.shards[s.place.ShardOf(obj)]
}

// stamp tags events with the shard they originated from.
//
//lotec:noalloc
func stamp(shard int, events []gdo.Event) []gdo.Event {
	for i := range events {
		events[i].Shard = int32(shard)
	}
	return events
}

// Register adds an object to its home shard.
func (s *Sharded) Register(obj ids.ObjectID, numPages int, owner ids.NodeID) error {
	return s.shardFor(obj).Register(obj, numPages, owner)
}

// NumPages returns the registered extent of obj.
func (s *Sharded) NumPages(obj ids.ObjectID) (int, error) {
	return s.shardFor(obj).NumPages(obj)
}

// Objects returns all registered objects across every shard, ascending.
func (s *Sharded) Objects() []ids.ObjectID {
	if len(s.shards) == 1 {
		return s.shards[0].Objects()
	}
	var out []ids.ObjectID
	for _, sh := range s.shards {
		out = append(out, sh.Objects()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// State returns the global lock state of obj.
func (s *Sharded) State(obj ids.ObjectID) (gdo.LockState, error) {
	return s.shardFor(obj).State(obj)
}

// ReadCount returns the number of reader families holding obj.
func (s *Sharded) ReadCount(obj ids.ObjectID) (int, error) {
	return s.shardFor(obj).ReadCount(obj)
}

// PageMap returns a copy of obj's page map.
func (s *Sharded) PageMap(obj ids.ObjectID) ([]gdo.PageLoc, error) {
	return s.shardFor(obj).PageMap(obj)
}

// CopySet returns the sites known to cache pages of obj.
func (s *Sharded) CopySet(obj ids.ObjectID) ([]ids.NodeID, error) {
	return s.shardFor(obj).CopySet(obj)
}

// LastWriter returns the site of obj's most recent committing update.
func (s *Sharded) LastWriter(obj ids.ObjectID) (ids.NodeID, error) {
	return s.shardFor(obj).LastWriter(obj)
}

// CommitSeq returns the family's position in the *global* commit order (1
// is first), assigned by the router when the family's first committing
// release arrived. With the lock state partitioned, shard-local sequence
// numbers would not be comparable across shards; the router's single
// counter restores the total order strict O2PL promises.
func (s *Sharded) CommitSeq(f ids.FamilyID) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq, ok := s.commitOrder[f]
	return seq, ok
}

// AssignCommitSeq fixes the family's position in the global commit order
// now, ahead of its per-shard releases, and returns it (skip-if-present:
// re-assignment is a no-op). Routed clients call this through the control
// plane before fanning their release batches out, so the order is decided
// by a single counter even when the releases land on different shards.
func (s *Sharded) AssignCommitSeq(f ids.FamilyID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq, ok := s.commitOrder[f]; ok {
		return seq
	}
	s.commitSeq++
	s.commitOrder[f] = s.commitSeq
	return s.commitSeq
}

// CancelRequest withdraws family's queued requests and pending upgrades on
// obj.
func (s *Sharded) CancelRequest(obj ids.ObjectID, family ids.FamilyID) (bool, error) {
	return s.shardFor(obj).CancelRequest(obj, family)
}

// Acquire routes Algorithm 4.2 to obj's shard. The shard performs its own
// intra-shard deadlock detection exactly as the single directory does;
// when the request parks and more than one shard exists, the router
// additionally searches the union waits-for graph for cycles whose edges
// straddle shards (see detect.go).
func (s *Sharded) Acquire(obj ids.ObjectID, ref ids.TxRef, family ids.FamilyID, age uint64, site ids.NodeID, mode o2pl.Mode) (gdo.AcquireResult, []gdo.Event, error) {
	shard := s.place.ShardOf(obj)
	res, events, err := s.shards[shard].Acquire(obj, ref, family, age, site, mode)
	if err != nil {
		return res, nil, err
	}
	events = stamp(shard, events)
	if len(s.shards) > 1 && res.Status == gdo.Queued {
		if victim, cycle := s.findVictimFrom(family); cycle {
			if victim == family {
				// Mirror the single directory's self-victim path: drop the
				// family's parked requests everywhere, silently — the
				// synchronous DeadlockAbort reply is the notification.
				for _, sh := range s.shards {
					sh.PurgeFamily(family)
				}
				return gdo.AcquireResult{Status: gdo.DeadlockAbort}, events, nil
			}
			events = append(events, s.abortVictim(victim)...)
		}
	}
	return res, events, nil
}

// Release routes Algorithm 4.4: the batch is split by shard and each shard
// releases, restamps and re-schedules its own objects. Committing releases
// are assigned their global commit sequence first. After the per-shard
// releases, re-pointed waiters may close inter-shard cycles the shard-local
// re-checks cannot see, so with multiple shards the router sweeps the union
// waits-for graph until it is acyclic.
func (s *Sharded) Release(family ids.FamilyID, site ids.NodeID, commit bool, rels []gdo.ObjectRelease) ([]gdo.Event, []gdo.PageStamp, error) {
	if commit {
		s.mu.Lock()
		if _, ok := s.commitOrder[family]; !ok {
			s.commitSeq++
			s.commitOrder[family] = s.commitSeq
		}
		s.mu.Unlock()
	}
	if len(s.shards) == 1 {
		events, stamps, err := s.shards[0].Release(family, site, commit, rels)
		return stamp(0, events), stamps, err
	}

	// Fast path: batches addressed to a single partition (the node engine
	// already sends one ReleaseReq per (home, shard)) skip the grouping
	// allocation.
	if sh, ok := singleShardOf(s.place, rels); ok {
		events, stamps, err := s.shards[sh].Release(family, site, commit, rels)
		if err != nil {
			return nil, nil, err
		}
		events = stamp(sh, events)
		events = append(events, s.sweep()...)
		return events, stamps, nil
	}

	byShard := make(map[int][]gdo.ObjectRelease)
	for _, rel := range rels {
		sh := s.place.ShardOf(rel.Obj)
		byShard[sh] = append(byShard[sh], rel)
	}
	var events []gdo.Event
	var stamps []gdo.PageStamp
	for sh := 0; sh < len(s.shards); sh++ {
		part, ok := byShard[sh]
		if !ok {
			continue
		}
		ev, st, err := s.shards[sh].Release(family, site, commit, part)
		if err != nil {
			return nil, nil, err
		}
		events = append(events, stamp(sh, ev)...)
		stamps = append(stamps, st...)
	}
	events = append(events, s.sweep()...)
	return events, stamps, nil
}

// singleShardOf reports whether every release in the batch homes to one
// partition, and which.
//
//lotec:noalloc
func singleShardOf(p Placement, rels []gdo.ObjectRelease) (int, bool) {
	if len(rels) == 0 {
		return 0, false
	}
	sh := p.ShardOf(rels[0].Obj)
	for _, rel := range rels[1:] {
		if p.ShardOf(rel.Obj) != sh {
			return 0, false
		}
	}
	return sh, true
}

// DebugDump renders every shard's lock state.
func (s *Sharded) DebugDump() string {
	if len(s.shards) == 1 {
		return s.shards[0].DebugDump()
	}
	var b strings.Builder
	for i, sh := range s.shards {
		d := sh.DebugDump()
		if d == "" {
			continue
		}
		fmt.Fprintf(&b, "shard %d:\n%s", i, d)
	}
	return b.String()
}
