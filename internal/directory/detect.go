// Inter-family deadlock detection across shards.
//
// Each shard detects cycles among its own waiters exactly as the single
// directory does (gdo/deadlock.go). A cycle whose edges straddle shards —
// family A queued on a shard-0 object family B holds while B is queued on a
// shard-1 object A holds — is invisible to both shards individually, so the
// router performs the paper-family of "edge chasing" in its simplest sound
// form: every shard exports its waits-for edge summary (gdo.WaitEdges) and
// the router unions them and searches the combined graph. In this
// in-process router aggregation runs synchronously at the two moments the
// graph can gain an edge or re-point one — when an acquire parks
// (Acquire → Queued) and after a release hands locks to new holders —
// rather than on a timer, so detection latency is zero and simulation runs
// stay deterministic. Victim selection matches the shard-local policy:
// the youngest (largest-age) waiting family on the cycle, FamilyID
// tie-break, wound-wait stable ages, so a repeatedly victimized root
// eventually becomes oldest and cannot starve.
//
// Under real concurrency (TCP deployment, stress tests) the union is a
// sequence of per-shard snapshots, not one atomic cut, so the search can
// observe a phantom cycle assembled from edges that never coexisted. A
// phantom victim is safe — the family aborts and retries, exactly like a
// real victim — and the stable-age policy still guarantees progress.

package directory

import (
	"sort"

	"lotec/internal/gdo"
	"lotec/internal/ids"
)

// unionWaits aggregates every shard's waits-for edge summary into one
// adjacency map (deterministically ordered) plus the waiting families'
// ages.
func (s *Sharded) unionWaits() (map[ids.FamilyID][]ids.FamilyID, map[ids.FamilyID]uint64) {
	adj := make(map[ids.FamilyID][]ids.FamilyID)
	ages := make(map[ids.FamilyID]uint64)
	for _, sh := range s.shards {
		edges, shardAges := sh.WaitEdges()
		for _, e := range edges {
			adj[e.From] = append(adj[e.From], e.To)
		}
		for f, age := range shardAges {
			ages[f] = age
		}
	}
	//lotec:unordered — per-key in-place sort; no cross-key state.
	for f := range adj {
		tos := adj[f]
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	}
	return adj, ages
}

// findCycleFrom runs the same colored DFS the shard-local detector uses,
// over an arbitrary adjacency, and returns the first cycle reachable from
// start (empty if none).
func findCycleFrom(adj map[ids.FamilyID][]ids.FamilyID, start ids.FamilyID) []ids.FamilyID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ids.FamilyID]int)
	var stack []ids.FamilyID
	var cycle []ids.FamilyID

	var dfs func(f ids.FamilyID) bool
	dfs = func(f ids.FamilyID) bool {
		color[f] = gray
		stack = append(stack, f)
		for _, g := range adj[f] {
			switch color[g] {
			case white:
				if dfs(g) {
					return true
				}
			case gray:
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == g {
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[f] = black
		return false
	}
	if !dfs(start) {
		return nil
	}
	return cycle
}

// youngest picks the victim from a cycle: largest age, FamilyID tie-break —
// identical to the shard-local policy.
func youngest(cycle []ids.FamilyID, ages map[ids.FamilyID]uint64) ids.FamilyID {
	victim := cycle[0]
	for _, f := range cycle[1:] {
		av, af := ages[victim], ages[f]
		if af > av || (af == av && f > victim) {
			victim = f
		}
	}
	return victim
}

// crossShardPossible is the O(1)-per-shard precheck gating every union
// pass: a cycle whose edges straddle shards requires waiting families in at
// least two shards. Intra-shard cycles are the shards' own business — their
// local detectors already handle them — so when fewer than two shards have
// waiters there is nothing for the router to find.
func (s *Sharded) crossShardPossible() bool {
	withWaiters := 0
	for _, sh := range s.shards {
		if sh.HasWaiters() {
			if withWaiters++; withWaiters == 2 {
				return true
			}
		}
	}
	return false
}

// findVictimFrom searches the union waits-for graph for a cycle reachable
// from start and returns the youngest waiting family on it.
func (s *Sharded) findVictimFrom(start ids.FamilyID) (ids.FamilyID, bool) {
	if !s.crossShardPossible() {
		return 0, false
	}
	adj, ages := s.unionWaits()
	cycle := findCycleFrom(adj, start)
	if len(cycle) == 0 {
		return 0, false
	}
	return youngest(cycle, ages), true
}

// abortVictim cancels the victim's waits on every shard and collects the
// deadlock-abort events for its site(s), each stamped with the shard it
// came from.
func (s *Sharded) abortVictim(victim ids.FamilyID) []gdo.Event {
	var events []gdo.Event
	for i, sh := range s.shards {
		events = append(events, stamp(i, sh.AbortVictim(victim))...)
	}
	return events
}

// sweep repeatedly searches the union graph and aborts the youngest family
// of each cycle until the graph is acyclic. Used after releases, where
// grant re-pointing can close cycles no single shard sees; bounded because
// every iteration removes at least one waiting family.
func (s *Sharded) sweep() []gdo.Event {
	var events []gdo.Event
	for {
		if !s.crossShardPossible() {
			return events
		}
		adj, ages := s.unionWaits()
		starts := make([]ids.FamilyID, 0, len(adj))
		for f := range adj {
			starts = append(starts, f)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		var cycle []ids.FamilyID
		for _, f := range starts {
			if cycle = findCycleFrom(adj, f); len(cycle) > 0 {
				break
			}
		}
		if len(cycle) == 0 {
			return events
		}
		events = append(events, s.abortVictim(youngest(cycle, ages))...)
	}
}
