// Epoch-stamped placement maps for the replicated control plane.
//
// A wire.PlacementMap is the versioned shard→owner assignment every actor
// carries: clients route by it, hosts accept an operation only when the
// client's stamped epoch matches their own and their own map names them
// the shard's primary. The map changes through exactly two transitions —
// backup promotion and shard handoff — and each bumps Epoch by one, so
// "strictly larger epoch" is the single adoption rule everywhere and two
// distinct maps can never share an epoch (promotion is serialized by the
// backup that executes it, handoff by the witness that ratifies it).

package directory

import (
	"lotec/internal/ids"
	"lotec/internal/wire"
)

// InitialMap builds the epoch-1 placement for a replicated deployment:
// shards directory partitions served by the given host nodes over a data
// plane of dataNodes sites. With spread false every shard's primary is
// hosts[0] and its backup hosts[1] (the classic primary/backup pair, extra
// hosts idle as handoff targets); with spread true primaries round-robin
// across all hosts — backups take the next host in the ring — so shard
// ownership crosses host boundaries and cross-host deadlock detection is
// exercised. With a single host there are no backups.
func InitialMap(shards, dataNodes int, hosts []ids.NodeID, spread bool) wire.PlacementMap {
	if shards < 1 {
		shards = 1
	}
	if dataNodes < 1 {
		dataNodes = 1
	}
	m := wire.PlacementMap{
		Epoch:   1,
		Nodes:   int32(dataNodes),
		Primary: make([]ids.NodeID, shards),
		Backup:  make([]ids.NodeID, shards),
	}
	for s := 0; s < shards; s++ {
		pi := 0
		if spread {
			pi = s % len(hosts)
		}
		m.Primary[s] = hosts[pi]
		if len(hosts) > 1 {
			m.Backup[s] = hosts[(pi+1)%len(hosts)]
		} else {
			m.Backup[s] = ids.NoNode
		}
	}
	return m
}

// stampEpoch writes the client's map epoch into the messages that carry
// one; other types pass through unstamped (they are either host-internal,
// already map-bearing, or epoch-free like RegisterReq).
func stampEpoch(m wire.Msg, epoch uint64) {
	switch t := m.(type) {
	case *wire.AcquireReq:
		t.Epoch = epoch
	case *wire.ReleaseReq:
		t.Epoch = epoch
	case *wire.CommitSeqReq:
		t.Epoch = epoch
	case *wire.AbortFamilyReq:
		t.Epoch = epoch
	case *wire.PromoteReq:
		t.Epoch = epoch
	case *wire.WaitEdgeUpdate:
		t.Epoch = epoch
	}
}
