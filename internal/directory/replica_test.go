package directory

import (
	"math"
	"testing"
	"time"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/o2pl"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/wire"
)

// Unit tests for the replicated control plane below the sim harness:
// placement-map construction, epoch discipline, promotion, and handoff,
// driven by hand-written wire traffic over a deterministic SimNet.

// repBed is a minimal replicated deployment: node 1 is the client, nodes
// 2..1+len(hosts) are directory hosts serving the given initial map.
type repBed struct {
	net   *transport.SimNet
	rec   *stats.Recorder
	hosts map[ids.NodeID]*Host
	place Placement
	m     wire.PlacementMap
}

func newRepBed(t *testing.T, nHosts, shards int, m wire.PlacementMap) *repBed {
	t.Helper()
	rec := stats.NewRecorder()
	net := transport.NewSimNet(1+nHosts, netmodel.Ethernet100.WithSoftwareCost(10*time.Microsecond), rec)
	b := &repBed{
		net:   net,
		rec:   rec,
		hosts: make(map[ids.NodeID]*Host),
		place: NewPlacement(shards, 1),
		m:     m,
	}
	for i := 0; i < nHosts; i++ {
		id := ids.NodeID(2 + i)
		h := NewHost(HostConfig{Env: net.Env(id), Place: b.place, Map: m, Rec: rec})
		b.hosts[id] = h
		net.SetAsyncHandler(id, h.Handler())
	}
	return b
}

// register installs obj in every host's replica (the deployment-wide
// pre-traffic registration).
func (b *repBed) register(t *testing.T, obj ids.ObjectID, numPages int) {
	t.Helper()
	for _, h := range b.hosts {
		if err := h.RegisterLocal(obj, numPages, 1); err != nil {
			t.Fatalf("register %v: %v", obj, err)
		}
	}
}

// client runs fn as a proc on node 1 and drives the net to quiescence.
func (b *repBed) client(t *testing.T, fn func(env transport.Env, rt *RouteTable)) {
	t.Helper()
	env := b.net.Env(1)
	rt := NewRouteTable(env, b.rec, b.m)
	env.Go(func() { fn(env, rt) })
	if err := b.net.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func acquire(t *testing.T, rt *RouteTable, place Placement, obj ids.ObjectID, fam ids.FamilyID, mode o2pl.Mode) *wire.AcquireResp {
	t.Helper()
	reply, err := rt.Call(place.ShardOf(obj), &wire.AcquireReq{
		Obj: obj, Ref: ids.TxRef{Tx: ids.TxID(fam), Node: 1},
		Family: fam, Age: uint64(fam), Site: 1, Mode: mode,
		Shard: int32(place.ShardOf(obj)),
	})
	if err != nil {
		t.Fatalf("acquire %v: %v", obj, err)
	}
	ar, ok := reply.(*wire.AcquireResp)
	if !ok {
		t.Fatalf("acquire %v: reply %T", obj, reply)
	}
	return ar
}

func release(t *testing.T, rt *RouteTable, place Placement, obj ids.ObjectID, fam ids.FamilyID, dirty []ids.PageNum) {
	t.Helper()
	reply, err := rt.Call(place.ShardOf(obj), &wire.ReleaseReq{
		Family: fam, Site: 1, Commit: true,
		Shard: int32(place.ShardOf(obj)),
		Rels:  []gdo.ObjectRelease{{Obj: obj, Dirty: dirty}},
	})
	if err != nil {
		t.Fatalf("release %v: %v", obj, err)
	}
	if _, ok := reply.(*wire.ReleaseResp); !ok {
		t.Fatalf("release %v: reply %T", obj, reply)
	}
}

// TestInitialMapShapes pins the deterministic placement-map layouts: the
// same inputs always yield the same map (byte-for-byte — re-running a
// deployment re-derives it), the single-host map has no backups, and the
// spread layout rings primaries and backups across hosts.
func TestInitialMapShapes(t *testing.T) {
	hosts := []ids.NodeID{5, 6, 7}
	a := InitialMap(4, 4, hosts, true)
	bm := InitialMap(4, 4, hosts, true)
	if !a.Equal(bm) {
		t.Fatalf("InitialMap not deterministic: %+v vs %+v", a, bm)
	}
	if a.Epoch != 1 {
		t.Errorf("initial epoch = %d, want 1", a.Epoch)
	}
	for s := 0; s < 4; s++ {
		if a.Primary[s] == a.Backup[s] {
			t.Errorf("shard %d: primary == backup == %v", s, a.Primary[s])
		}
		want := hosts[(s+1)%len(hosts)]
		if a.Backup[s] != want {
			t.Errorf("shard %d backup = %v, want ring successor %v", s, a.Backup[s], want)
		}
	}
	// Clone is independent: mutating it must not alias the original.
	c := a.Clone()
	c.Primary[0] = 99
	if a.Primary[0] == 99 {
		t.Error("Clone aliases Primary slice")
	}
	// Single host: relocatable but unreplicated — no backups anywhere.
	solo := InitialMap(3, 2, []ids.NodeID{9}, false)
	for s := 0; s < 3; s++ {
		if solo.Primary[s] != 9 || solo.Backup[s] != ids.NoNode {
			t.Errorf("solo shard %d = %v/%v, want 9/NoNode", s, solo.Primary[s], solo.Backup[s])
		}
	}
	// Unspread: everything on the first host, backed by the second.
	packed := InitialMap(2, 2, hosts, false)
	for s := 0; s < 2; s++ {
		if packed.Primary[s] != 5 || packed.Backup[s] != 6 {
			t.Errorf("packed shard %d = %v/%v, want 5/6", s, packed.Primary[s], packed.Backup[s])
		}
	}
}

// TestReplicatedSingleShard runs acquire/release traffic through a
// single-shard primary/backup pair (the smallest replicated topology) and
// requires the backup's directory to track the primary's byte-for-byte:
// same page versions, both drained, epoch untouched.
func TestReplicatedSingleShard(t *testing.T) {
	m := InitialMap(1, 1, []ids.NodeID{2, 3}, false)
	b := newRepBed(t, 2, 1, m)
	obj := ids.ObjectID(1)
	b.register(t, obj, 2)

	b.client(t, func(env transport.Env, rt *RouteTable) {
		if ar := acquire(t, rt, b.place, obj, 10, o2pl.Write); ar.Status != gdo.GrantedNow {
			t.Errorf("acquire status = %v, want GrantedNow", ar.Status)
		}
		release(t, rt, b.place, obj, 10, []ids.PageNum{0, 1})
		ar := acquire(t, rt, b.place, obj, 11, o2pl.Read)
		if ar.Status != gdo.GrantedNow {
			t.Errorf("reacquire status = %v, want GrantedNow", ar.Status)
		}
		if ar.LastWriter != 1 {
			t.Errorf("last writer = %v, want 1", ar.LastWriter)
		}
		release(t, rt, b.place, obj, 11, nil)
	})

	pd, ok := b.hosts[2].PrimaryDir(0)
	if !ok {
		t.Fatal("host 2 lost shard 0 primaryship in a fault-free run")
	}
	bd, primary, ok := b.hosts[3].ReplicaDir(0)
	if !ok || primary {
		t.Fatalf("host 3 replica: primary=%v ok=%v, want backup", primary, ok)
	}
	pm, err1 := pd.PageMap(obj)
	bm, err2 := bd.PageMap(obj)
	if err1 != nil || err2 != nil {
		t.Fatalf("page maps: %v / %v", err1, err2)
	}
	for p := range pm {
		if pm[p] != bm[p] {
			t.Errorf("page %d: primary %+v, backup %+v", p, pm[p], bm[p])
		}
	}
	if pm[0].Version == 0 {
		t.Error("committed write left page 0 at version 0")
	}
	if got := b.hosts[2].Map().Epoch; got != 1 {
		t.Errorf("epoch = %d after fault-free run, want 1", got)
	}
	if d := b.hosts[2].DebugDump(); d != "" {
		t.Errorf("primary not drained:\n%s", d)
	}
}

// TestPromotionIdempotent drives promotion directly: the backup bumps the
// epoch exactly once no matter how many clients demand it, the deposed
// primary refuses new-epoch traffic with a redirect, and the promoted
// backup serves it.
func TestPromotionIdempotent(t *testing.T) {
	m := InitialMap(1, 1, []ids.NodeID{2, 3}, false)
	b := newRepBed(t, 2, 1, m)
	obj := ids.ObjectID(1)
	b.register(t, obj, 1)

	b.client(t, func(env transport.Env, rt *RouteTable) {
		promote := func() wire.PlacementMap {
			reply, err := env.Call(3, &wire.PromoteReq{Dead: 2, Epoch: 1})
			if err != nil {
				t.Fatalf("promote: %v", err)
			}
			pr, ok := reply.(*wire.PromoteResp)
			if !ok {
				t.Fatalf("promote reply %T", reply)
			}
			return pr.Map
		}
		m1 := promote()
		m2 := promote()
		if m1.Epoch != 2 || !m1.Equal(m2) {
			t.Errorf("promotion maps: %+v then %+v, want identical epoch-2", m1, m2)
		}
		if m1.Primary[0] != 3 || m1.Backup[0] != ids.NoNode {
			t.Errorf("post-promotion shard 0 = %v/%v, want 3/NoNode", m1.Primary[0], m1.Backup[0])
		}

		// The old primary must refuse an op stamped with the new epoch —
		// its redirect carries its own (older) map, which the client does
		// not adopt.
		req := &wire.AcquireReq{
			Obj: obj, Ref: ids.TxRef{Tx: 20, Node: 1}, Family: 20, Age: 20,
			Site: 1, Mode: o2pl.Read, Shard: 0, Epoch: m1.Epoch,
		}
		reply, err := env.Call(2, req)
		if err != nil {
			t.Fatalf("stale-primary call: %v", err)
		}
		rr, ok := reply.(*wire.RouteResp)
		if !ok {
			t.Fatalf("deposed primary answered %T, want RouteResp", reply)
		}
		if rr.Map.Epoch >= m1.Epoch {
			t.Errorf("deposed primary claims epoch %d >= %d", rr.Map.Epoch, m1.Epoch)
		}

		// Through the route table: the client adopts the promotion map and
		// the new primary serves the request.
		if !rt.Adopt(m1) {
			t.Error("route table refused the newer promotion map")
		}
		if ar := acquire(t, rt, b.place, obj, 21, o2pl.Read); ar.Status != gdo.GrantedNow {
			t.Errorf("post-promotion acquire = %v, want GrantedNow", ar.Status)
		}
		release(t, rt, b.place, obj, 21, nil)
	})

	if got := b.rec.Counters().Promotions; got != 1 {
		t.Errorf("promotions = %d, want exactly 1 (idempotent)", got)
	}
	if got := b.rec.Counters().EpochRejects; got < 1 {
		t.Errorf("epoch rejects = %d, want >= 1 (stale primary refused)", got)
	}
}

// TestEpochMonotonicNearRollover starts the deployment at the top of the
// epoch range: bumps stay strictly monotonic and a map whose epoch wrapped
// around to a small value is refused by every adoption guard.
func TestEpochMonotonicNearRollover(t *testing.T) {
	const high = uint64(math.MaxUint64 - 4)
	m := InitialMap(1, 1, []ids.NodeID{2, 3}, false)
	m.Epoch = high
	b := newRepBed(t, 2, 1, m)
	obj := ids.ObjectID(1)
	b.register(t, obj, 1)

	b.client(t, func(env transport.Env, rt *RouteTable) {
		reply, err := env.Call(3, &wire.PromoteReq{Dead: 2, Epoch: high})
		if err != nil {
			t.Fatalf("promote: %v", err)
		}
		pr, ok := reply.(*wire.PromoteResp)
		if !ok {
			t.Fatalf("promote reply %T", reply)
		}
		if pr.Map.Epoch != high+1 {
			t.Errorf("promotion epoch = %d, want %d", pr.Map.Epoch, high+1)
		}
		if !rt.Adopt(pr.Map) {
			t.Error("route table refused the strictly newer map")
		}
		// A wrapped map (epoch restarted from 1) must never displace the
		// high-epoch view.
		wrapped := pr.Map.Clone()
		wrapped.Epoch = 1
		if rt.Adopt(wrapped) {
			t.Error("route table adopted a wrapped (older) epoch")
		}
		if got := rt.Epoch(); got != high+1 {
			t.Errorf("route epoch = %d, want %d", got, high+1)
		}
		// Ops stamped with the adopted high epoch still flow.
		if ar := acquire(t, rt, b.place, obj, 30, o2pl.Read); ar.Status != gdo.GrantedNow {
			t.Errorf("high-epoch acquire = %v, want GrantedNow", ar.Status)
		}
		release(t, rt, b.place, obj, 30, nil)
	})
}

// TestHandoffPreservesReleasedState commits a write, hands the shard off
// to a fresh host, and re-acquires through the new primary: the page
// versions and last-writer recorded before the move must survive it (the
// released-then-reacquired-across-a-handoff-boundary edge case).
func TestHandoffPreservesReleasedState(t *testing.T) {
	// Hosts 2 (primary), 3 (backup = witness), 4 (target, initially idle).
	m := InitialMap(1, 1, []ids.NodeID{2, 3}, false)
	b := newRepBed(t, 3, 1, m)
	obj := ids.ObjectID(1)
	b.register(t, obj, 2)

	b.client(t, func(env transport.Env, rt *RouteTable) {
		if ar := acquire(t, rt, b.place, obj, 40, o2pl.Write); ar.Status != gdo.GrantedNow {
			t.Fatalf("acquire = %v, want GrantedNow", ar.Status)
		}
		release(t, rt, b.place, obj, 40, []ids.PageNum{1})

		reply, err := rt.Call(0, &wire.HandoffStartReq{Shard: 0, Target: 4})
		if err != nil {
			t.Fatalf("handoff: %v", err)
		}
		hr, ok := reply.(*wire.HandoffStartResp)
		if !ok {
			t.Fatalf("handoff reply %T", reply)
		}
		if !hr.OK || hr.StateBytes == 0 {
			t.Fatalf("handoff OK=%v bytes=%d, want accepted with state", hr.OK, hr.StateBytes)
		}
		rt.Adopt(hr.Map)
		if got := rt.Map().Primary[0]; got != 4 {
			t.Fatalf("post-handoff primary = %v, want 4", got)
		}

		// Reacquire through the new primary: the committed state moved.
		ar := acquire(t, rt, b.place, obj, 41, o2pl.Read)
		if ar.Status != gdo.GrantedNow {
			t.Fatalf("post-handoff acquire = %v, want GrantedNow", ar.Status)
		}
		if ar.LastWriter != 1 {
			t.Errorf("post-handoff last writer = %v, want 1", ar.LastWriter)
		}
		if len(ar.PageMap) != 2 || ar.PageMap[1].Version == 0 {
			t.Errorf("post-handoff page map %+v lost the committed version", ar.PageMap)
		}
		release(t, rt, b.place, obj, 41, nil)
	})

	if _, ok := b.hosts[4].PrimaryDir(0); !ok {
		t.Error("target host 4 did not become shard 0 primary")
	}
	if _, ok := b.hosts[2].PrimaryDir(0); ok {
		t.Error("old primary host 2 still claims shard 0")
	}
	if got := b.hosts[4].Map().Epoch; got < 2 {
		t.Errorf("target epoch = %d, want >= 2", got)
	}
	hs := b.rec.Handoffs()
	if len(hs) != 1 || hs[0].Bytes == 0 {
		t.Errorf("recorded handoffs = %+v, want one sample with bytes", hs)
	}
}
