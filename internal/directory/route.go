// Client-side routing for the replicated control plane.
//
// A RouteTable is one actor's view of the placement map plus the retry
// discipline around it: stamp the current epoch into the request, call the
// shard's primary, and react to the two ways the cluster corrects a stale
// view — a RouteResp carrying a newer map (adopt and retry) and an
// unreachable primary (ask the shard's backup to promote itself, adopt the
// post-promotion map, and retry). Requests are never dropped on a route
// change; they are re-aimed until a current primary accepts them.

package directory

import (
	"errors"
	"sync"
	"time"

	"lotec/internal/ids"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/wire"
)

// ErrNoRoute is returned when a call exhausts its re-route budget without
// reaching a current primary (in practice: more than a single failure, or
// a partition outlasting every retry).
var ErrNoRoute = errors.New("directory: no route to shard primary")

// routeAttempts bounds the adopt-and-retry loop. Each map adoption makes
// progress (epochs only grow), so the bound is only hit when the cluster
// is genuinely unavailable.
const routeAttempts = 64

// routeBackoff spaces retries that did not learn a newer map, so a client
// waiting out a transient ownership gap (e.g. a handoff ratification in
// flight) does not hot-loop on RouteResp exchanges.
const routeBackoff = 200 * time.Microsecond

// RouteTable is safe for concurrent use by every proc of one node.
type RouteTable struct {
	env transport.Env
	rec *stats.Recorder

	mu  sync.Mutex
	cur wire.PlacementMap
}

// NewRouteTable returns a table starting from the given map. rec may be
// nil; when set, client-observed failovers are recorded into it.
func NewRouteTable(env transport.Env, rec *stats.Recorder, initial wire.PlacementMap) *RouteTable {
	return &RouteTable{env: env, rec: rec, cur: initial.Clone()}
}

// Epoch returns the currently adopted map epoch.
func (r *RouteTable) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur.Epoch
}

// Map returns a copy of the currently adopted map.
func (r *RouteTable) Map() wire.PlacementMap {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur.Clone()
}

// NumShards returns the shard count of the adopted map.
func (r *RouteTable) NumShards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur.NumShards()
}

// Adopt installs m if it is strictly newer than the current map and
// reports whether it was.
func (r *RouteTable) Adopt(m wire.PlacementMap) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.Epoch <= r.cur.Epoch {
		return false
	}
	r.cur = m.Clone()
	return true
}

// view snapshots the routing decision for one attempt.
func (r *RouteTable) view(shard int) (primary, backup ids.NodeID, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= r.cur.NumShards() {
		return ids.NoNode, ids.NoNode, r.cur.Epoch
	}
	return r.cur.Primary[shard], r.cur.Backup[shard], r.cur.Epoch
}

// Call sends m to the current primary of shard, stamping the adopted
// epoch, and follows route corrections until a primary answers. It must be
// called from a proc (it blocks). The reply is never a RouteResp.
func (r *RouteTable) Call(shard int, m wire.Msg) (wire.Msg, error) {
	for attempt := 0; attempt < routeAttempts; attempt++ {
		primary, backup, epoch := r.view(shard)
		if primary == ids.NoNode {
			return nil, ErrNoRoute
		}
		stampEpoch(m, epoch)
		t0 := r.env.Now()
		reply, err := r.env.Call(primary, m)
		if err != nil {
			// The primary stopped answering. Ask the backup to promote
			// itself; its reply is the authoritative post-promotion map
			// (or just the current one, if someone else already promoted).
			if backup == ids.NoNode || backup == primary {
				return nil, err
			}
			preply, perr := r.env.Call(backup, &wire.PromoteReq{Dead: primary, Epoch: epoch})
			if perr != nil {
				return nil, err // both replicas gone: out of failure budget
			}
			if pr, ok := preply.(*wire.PromoteResp); ok {
				if r.Adopt(pr.Map) && r.rec != nil {
					r.rec.AddFailover(stats.FailoverSample{Latency: r.env.Now() - t0})
				}
			}
			continue
		}
		if rr, ok := reply.(*wire.RouteResp); ok {
			// A redirect terminates this logical request: the op was
			// rejected at the front door (not applied anywhere), and the
			// host's idempotency cache now holds this RouteResp against the
			// request's current ID. Clear the ID so the re-aimed attempt is
			// a fresh request instead of a replay of the redirect. (The
			// timeout path above must NOT clear it: a promoted backup
			// answers the replayed request from an entry primed under the
			// original ID.)
			if im, ok := m.(wire.Idempotent); ok {
				im.SetRequestID(0)
			}
			if !r.Adopt(rr.Map) {
				// Same or older map: ownership is in transition (seal,
				// ratification, a peer that has not yet adopted the epoch
				// we hold). Back off briefly instead of spinning.
				r.env.Sleep(routeBackoff)
			}
			continue
		}
		return reply, nil
	}
	return nil, ErrNoRoute
}
