package directory

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// mailbox routes deferred directory events (grants, deadlock aborts) to the
// goroutine whose family they target, the way each site's engine would.
type mailbox struct {
	mu    sync.Mutex
	boxes map[ids.FamilyID]chan gdo.Event
}

func (m *mailbox) register(f ids.FamilyID) chan gdo.Event {
	ch := make(chan gdo.Event, 8)
	m.mu.Lock()
	m.boxes[f] = ch
	m.mu.Unlock()
	return ch
}

func (m *mailbox) unregister(f ids.FamilyID) {
	m.mu.Lock()
	delete(m.boxes, f)
	m.mu.Unlock()
}

// dispatch delivers events, checking each is stamped with the shard that
// owns its object. A missing box is a test failure: it means the directory
// produced an event for a family that already finished.
func (m *mailbox) dispatch(t *testing.T, s *Sharded, events []gdo.Event) {
	for _, ev := range events {
		if int(ev.Shard) != s.ShardOf(ev.Obj) {
			t.Errorf("event %+v stamped shard %d, owner is %d", ev, ev.Shard, s.ShardOf(ev.Obj))
		}
		m.mu.Lock()
		ch := m.boxes[ev.Family]
		m.mu.Unlock()
		if ch == nil {
			t.Errorf("event %+v for unregistered family", ev)
			continue
		}
		ch <- ev
	}
}

// TestShardedStress hammers a 4-shard directory from concurrent sites: each
// iteration a fresh family write-locks two objects in ascending ID order
// (structurally deadlock-free, though inconsistent cross-shard snapshots may
// still produce phantom victims — those abort and are not errors) and then
// commits. Run under -race. Every queued request must be granted or aborted
// within the timeout: a lost grant hangs its worker.
func TestShardedStress(t *testing.T) {
	const (
		shards  = 4
		nodes   = 4
		objects = 32
		workers = 8
		iters   = 150
	)
	s := NewSharded(shards, nodes)
	for o := ids.ObjectID(1); o <= objects; o++ {
		if err := s.Register(o, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	mb := &mailbox{boxes: map[ids.FamilyID]chan gdo.Event{}}
	var nextFam, commits, aborts atomic.Uint64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			site := ids.NodeID(w%nodes + 1)
			for i := 0; i < iters && !t.Failed(); i++ {
				// Family ID doubles as age: later families are younger.
				fam := ids.FamilyID(nextFam.Add(1))
				ch := mb.register(fam)

				a := ids.ObjectID(rng.Intn(objects) + 1)
				b := ids.ObjectID(rng.Intn(objects) + 1)
				for b == a {
					b = ids.ObjectID(rng.Intn(objects) + 1)
				}
				if b < a {
					a, b = b, a
				}

				var held []ids.ObjectID
				aborted := false
				for _, obj := range []ids.ObjectID{a, b} {
					ref := ids.TxRef{Tx: ids.TxID(fam), Node: site}
					res, evs, err := s.Acquire(obj, ref, fam, uint64(fam), site, o2pl.Write)
					if err != nil {
						t.Errorf("acquire %v by fam %v: %v", obj, fam, err)
						return
					}
					mb.dispatch(t, s, evs)
					switch res.Status {
					case gdo.GrantedNow:
						held = append(held, obj)
					case gdo.Queued:
						select {
						case ev := <-ch:
							switch {
							case ev.Kind == gdo.EventGrant && ev.Obj == obj:
								held = append(held, obj)
							case ev.Kind == gdo.EventDeadlockAbort:
								aborted = true
							default:
								t.Errorf("fam %v waiting on %v got %+v", fam, obj, ev)
								return
							}
						case <-time.After(20 * time.Second):
							t.Errorf("lost grant: fam %v never unblocked on %v", fam, obj)
							return
						}
					case gdo.DeadlockAbort:
						aborted = true
					}
					if aborted {
						break
					}
				}

				if len(held) > 0 {
					rels := make([]gdo.ObjectRelease, len(held))
					for j, o := range held {
						rels[j] = gdo.ObjectRelease{Obj: o}
					}
					evs, _, err := s.Release(fam, site, !aborted, rels)
					if err != nil {
						t.Errorf("release fam %v: %v", fam, err)
						return
					}
					mb.dispatch(t, s, evs)
				}
				mb.unregister(fam)
				if aborted {
					aborts.Add(1)
				} else {
					commits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent: every lock handed back.
	for o := ids.ObjectID(1); o <= objects; o++ {
		if st, err := s.State(o); err != nil || st != gdo.Free {
			t.Errorf("after drain, %v state = %v, %v; want Free", o, st, err)
		}
	}
	if commits.Load() == 0 {
		t.Error("no family ever committed")
	}
	t.Logf("%d commits, %d phantom aborts across %d shards", commits.Load(), aborts.Load(), shards)
}
