package directory

import (
	"testing"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// TestAllocsAcquireRelease gates the directory's uncontended fast path:
// immediate-grant acquire plus release in steady state — the family-hold
// freelist, waits-for scratch, and entry scratch absorb every per-op
// bookkeeping structure after warmup. The one remaining allocation is the
// PageMap copy handed to the grantee: the grantee retains it (node-side
// entry metadata), so it must be owned memory, not a view of directory
// state that mutates under the shard lock.
func TestAllocsAcquireRelease(t *testing.T) {
	const objects = 64
	s := NewSharded(1, 1)
	for o := ids.ObjectID(1); o <= objects; o++ {
		if err := s.Register(o, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	rels := make([]gdo.ObjectRelease, 1)
	var iter int
	n := testing.AllocsPerRun(1000, func() {
		iter++
		obj := ids.ObjectID(iter%objects + 1)
		fam := ids.FamilyID(iter)
		ref := ids.TxRef{Tx: ids.TxID(fam), Node: 1}
		if _, _, err := s.Acquire(obj, ref, fam, uint64(fam), 1, o2pl.Write); err != nil {
			t.Fatal(err)
		}
		rels[0] = gdo.ObjectRelease{Obj: obj}
		if _, _, err := s.Release(fam, 1, false, rels); err != nil {
			t.Fatal(err)
		}
	})
	if n > 1 {
		t.Errorf("acquire+release allocates %.2f/op, want ≤ 1 (the grantee-owned PageMap copy)", n)
	}
}
