package directory

import (
	"reflect"
	"testing"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

func ref(f ids.FamilyID, n ids.NodeID) ids.TxRef {
	return ids.TxRef{Tx: ids.TxID(f), Node: n}
}

func TestPlacement(t *testing.T) {
	p := NewPlacement(4, 8)
	single := gdo.New(8)
	for obj := ids.ObjectID(-5); obj < 40; obj++ {
		s := p.ShardOf(obj)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%v) = %d outside [0,4)", obj, s)
		}
		// The cost model's home assignment must be unchanged from the
		// single directory at every shard count. (IDs are allocated from 1;
		// the single directory never normalizes negatives.)
		if obj < 0 {
			continue
		}
		if got, want := p.HomeNode(obj), single.HomeNode(obj); got != want {
			t.Errorf("HomeNode(%v) = %v, single directory says %v", obj, got, want)
		}
	}
	// Shards == Nodes: the objects homed at one node form exactly one shard.
	q := NewPlacement(8, 8)
	for obj := ids.ObjectID(0); obj < 64; obj++ {
		if got, want := q.ShardOf(obj), int(q.HomeNode(obj))-1; got != want {
			t.Errorf("ShardOf(%v) = %d, HomeNode-1 = %d", obj, got, want)
		}
	}
	if d := NewPlacement(0, 0); d.Shards != 1 || d.Nodes != 1 {
		t.Errorf("zero placement normalized to %+v", d)
	}
}

// step runs one scripted directory operation and flattens everything
// observable about its outcome.
type step func(s Service) []any

// TestSingleShardDelegation scripts an acquire/queue/commit/grant sequence
// against a plain gdo.Directory and a 1-shard router and requires identical
// results, events and stamps — the delegation path must add nothing.
func TestSingleShardDelegation(t *testing.T) {
	script := []step{
		func(s Service) []any { return []any{s.Register(1, 3, 1), s.Register(2, 2, 2)} },
		func(s Service) []any {
			res, ev, err := s.Acquire(1, ref(10, 1), 10, 10, 1, o2pl.Write)
			return []any{res, ev, err}
		},
		func(s Service) []any {
			res, ev, err := s.Acquire(1, ref(20, 2), 20, 20, 2, o2pl.Write)
			return []any{res, ev, err}
		},
		func(s Service) []any {
			res, ev, err := s.Acquire(2, ref(10, 1), 10, 10, 1, o2pl.Read)
			return []any{res, ev, err}
		},
		func(s Service) []any {
			ev, st, err := s.Release(10, 1, true, []gdo.ObjectRelease{
				{Obj: 1, Dirty: []ids.PageNum{0, 2}}, {Obj: 2}})
			return []any{ev, st, err}
		},
		func(s Service) []any {
			ev, st, err := s.Release(20, 2, false, []gdo.ObjectRelease{{Obj: 1}})
			return []any{ev, st, err}
		},
		func(s Service) []any {
			seq, ok := s.CommitSeq(10)
			st, err := s.State(1)
			return []any{seq, ok, st, err}
		},
	}
	var outs [2][][]any
	for i, svc := range []Service{gdo.New(4), NewSharded(1, 4)} {
		for _, f := range script {
			outs[i] = append(outs[i], f(svc))
		}
	}
	for i := range script {
		if !reflect.DeepEqual(outs[0][i], outs[1][i]) {
			t.Errorf("step %d diverges:\n single %#v\nsharded %#v", i, outs[0][i], outs[1][i])
		}
	}
}

// crossShardCycle stands up the canonical two-family, two-shard deadlock:
// on a 2-shard directory, famA (at site 1) holds object 2 (shard 0) and
// famB (at site 2) holds object 3 (shard 1); then B parks behind A on
// object 2. Neither shard alone sees a cycle until A requests object 3.
func crossShardCycle(t *testing.T, ageA, ageB uint64) *Sharded {
	t.Helper()
	s := NewSharded(2, 2)
	for _, o := range []ids.ObjectID{2, 3} {
		if err := s.Register(o, 2, 1); err != nil {
			t.Fatal(err)
		}
	}
	if s.ShardOf(2) != 0 || s.ShardOf(3) != 1 {
		t.Fatalf("placement: O2→%d O3→%d, want 0 and 1", s.ShardOf(2), s.ShardOf(3))
	}
	mustGrant := func(obj ids.ObjectID, f ids.FamilyID, age uint64, site ids.NodeID) {
		t.Helper()
		res, ev, err := s.Acquire(obj, ref(f, site), f, age, site, o2pl.Write)
		if err != nil || res.Status != gdo.GrantedNow || len(ev) != 0 {
			t.Fatalf("acquire %v by fam %v: %+v, %v, %v", obj, f, res, ev, err)
		}
	}
	mustGrant(2, 100, ageA, 1)
	mustGrant(3, 200, ageB, 2)
	res, ev, err := s.Acquire(2, ref(200, 2), 200, ageB, 2, o2pl.Write)
	if err != nil || res.Status != gdo.Queued || len(ev) != 0 {
		t.Fatalf("B parks on O2: %+v, %v, %v", res, ev, err)
	}
	return s
}

// TestCrossShardDeadlockAbortsYoungest: A is older, so when A's request for
// object 3 closes the inter-shard cycle, the router must pick B (youngest)
// as victim and cancel its shard-0 wait.
func TestCrossShardDeadlockAbortsYoungest(t *testing.T) {
	s := crossShardCycle(t, 1, 2) // ageA=1 (older), ageB=2 (youngest)

	res, ev, err := s.Acquire(3, ref(100, 1), 100, 1, 1, o2pl.Write)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != gdo.Queued {
		t.Fatalf("A's closing request: status %v, want Queued", res.Status)
	}
	if len(ev) != 1 || ev[0].Kind != gdo.EventDeadlockAbort || ev[0].Family != 200 {
		t.Fatalf("victim events = %+v, want one DeadlockAbort for fam 200", ev)
	}
	if ev[0].Shard != 0 || ev[0].Obj != 2 {
		t.Errorf("abort stamped shard %d obj %v, want shard 0 obj 2", ev[0].Shard, ev[0].Obj)
	}

	// B's site reacts by aborting the family: releasing its holds must
	// grant object 3 to the still-queued A.
	rel, _, err := s.Release(200, 2, false, []gdo.ObjectRelease{{Obj: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 1 || rel[0].Kind != gdo.EventGrant || rel[0].Family != 100 || rel[0].Obj != 3 {
		t.Fatalf("post-abort release events = %+v, want grant of O3 to fam 100", rel)
	}
	if rel[0].Shard != 1 {
		t.Errorf("grant stamped shard %d, want 1", rel[0].Shard)
	}
}

// TestCrossShardDeadlockSelfVictim: A is the youngest, so A's own closing
// request is refused with DeadlockAbort and its parked state is purged from
// every shard, leaving B's wait intact.
func TestCrossShardDeadlockSelfVictim(t *testing.T) {
	s := crossShardCycle(t, 2, 1) // ageA=2 (youngest), ageB=1

	res, ev, err := s.Acquire(3, ref(100, 1), 100, 2, 1, o2pl.Write)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != gdo.DeadlockAbort {
		t.Fatalf("youngest requester: status %v, want DeadlockAbort", res.Status)
	}
	if len(ev) != 0 {
		t.Fatalf("self-victim must abort silently, got events %+v", ev)
	}

	// A aborts and hands back object 2: B's surviving wait is granted.
	rel, _, err := s.Release(100, 1, false, []gdo.ObjectRelease{{Obj: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 1 || rel[0].Kind != gdo.EventGrant || rel[0].Family != 200 || rel[0].Obj != 2 {
		t.Fatalf("release events = %+v, want grant of O2 to fam 200", rel)
	}

	// A's purged request must be gone from shard 1: when B finishes, object
	// 3 goes Free instead of to the phantom waiter.
	if _, _, err := s.Release(200, 2, false, []gdo.ObjectRelease{{Obj: 2, Dirty: nil}, {Obj: 3}}); err != nil {
		t.Fatal(err)
	}
	if st, err := s.State(3); err != nil || st != gdo.Free {
		t.Errorf("O3 state = %v, %v, want Free", st, err)
	}
}

// TestRouterCommitOrder: per-shard release batches of one committing family
// must consume exactly one global sequence number, and distinct families
// must be ordered by release arrival.
func TestRouterCommitOrder(t *testing.T) {
	s := NewSharded(2, 2)
	for _, o := range []ids.ObjectID{2, 3} {
		if err := s.Register(o, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	acquire := func(obj ids.ObjectID, f ids.FamilyID) {
		t.Helper()
		res, _, err := s.Acquire(obj, ref(f, 1), f, uint64(f), 1, o2pl.Write)
		if err != nil || res.Status != gdo.GrantedNow {
			t.Fatalf("acquire %v by %v: %+v %v", obj, f, res, err)
		}
	}
	release := func(f ids.FamilyID, objs ...ids.ObjectID) {
		t.Helper()
		for _, o := range objs { // one batch per shard, like the engine
			if _, _, err := s.Release(f, 1, true, []gdo.ObjectRelease{{Obj: o}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	acquire(2, 10)
	acquire(3, 10)
	release(10, 2, 3)
	acquire(2, 20)
	release(20, 2)

	if seq, ok := s.CommitSeq(10); !ok || seq != 1 {
		t.Errorf("fam 10 commit seq = %d, %v, want 1 (split release must not double-count)", seq, ok)
	}
	if seq, ok := s.CommitSeq(20); !ok || seq != 2 {
		t.Errorf("fam 20 commit seq = %d, %v, want 2", seq, ok)
	}
	if _, ok := s.CommitSeq(99); ok {
		t.Error("unknown family has a commit seq")
	}
}
