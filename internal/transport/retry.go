package transport

import (
	"errors"
	"time"

	"lotec/internal/fault"
)

// Fault-layer errors. Both are retryable at the RPC level; when retries
// are exhausted the engine maps them to node.ErrSiteUnreachable and
// aborts the root instead of hanging.
var (
	// ErrTimeout: one RPC attempt expired without a reply.
	ErrTimeout = errors.New("transport: call timed out")
	// ErrUnreachable: every allowed attempt failed; the peer is treated
	// as unreachable.
	ErrUnreachable = errors.New("transport: peer unreachable")
)

// RetryPolicy bounds an Env.Call's retransmission behavior when a fault
// injector (or a real lossy network) is in play. The zero value means
// "transport defaults".
type RetryPolicy struct {
	// Attempts is the maximum number of transmissions per call
	// (0 = transport default; negative = exactly one attempt, no retry).
	Attempts int
	// Timeout is the per-attempt reply deadline.
	Timeout time.Duration
	// BaseBackoff is the pre-jitter wait after the first timeout; it
	// doubles per attempt up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Seed drives the deterministic backoff jitter (defaults to the
	// installed fault plan's seed).
	Seed uint64
}

// WithDefaults fills zero fields from d.
func (p RetryPolicy) WithDefaults(d RetryPolicy) RetryPolicy {
	if p.Attempts == 0 {
		p.Attempts = d.Attempts
	}
	if p.Timeout == 0 {
		p.Timeout = d.Timeout
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	return p
}

// Backoff returns the capped, jittered exponential wait before
// retransmission number attempt (1-based retry count: attempt 0 is the
// wait after the first timeout). Jitter is deterministic in
// (Seed, reqID, attempt), so simulated runs replay exactly.
func (p RetryPolicy) Backoff(reqID uint64, attempt int) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		d = 100 * time.Microsecond
	}
	for i := 0; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Half-to-full jitter: wait in [d/2, d).
	half := d / 2
	if half <= 0 {
		return d
	}
	j := time.Duration(fault.Mix64(p.Seed, reqID, uint64(attempt)) % uint64(half))
	return half + j
}
