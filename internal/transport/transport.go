// Package transport abstracts how LOTEC sites exchange messages so that the
// identical protocol engine (package node) runs both under the paper's
// deterministic simulation (§5) and over real TCP (package server).
//
// Two implementations are provided:
//
//   - SimNet: a deterministic discrete-event simulator with a virtual clock.
//     Message latency follows the netmodel cost model, every message is
//     recorded into a stats.Recorder, and transaction goroutines are
//     cooperatively scheduled one at a time so runs are exactly
//     reproducible.
//   - TCPNet (package server): real sockets, real blocking.
//
// The contract: transaction code runs in "procs" started with Env.Go and
// may block (Call, Future.Wait, Sleep); message handlers run on delivery
// and must never block.
package transport

import (
	"errors"
	"time"

	"lotec/internal/ids"
	"lotec/internal/wire"
)

// Handler processes one inbound message at a node. For RPCs it returns the
// reply; for one-way messages it returns nil. Handlers must not block and
// must not call Env.Call (use Env.Send or complete futures instead).
type Handler func(from ids.NodeID, m wire.Msg) wire.Msg

// AsyncHandler processes one inbound message and delivers its reply through
// a callback instead of a return value, so the reply can be deferred past
// the handler's own return — e.g. a replicated directory shard that must
// not answer a client until its backup has acknowledged the op. The reply
// callback may be invoked synchronously (inside the handler) or from any
// later event; only the first invocation counts. Like Handler, an
// AsyncHandler must not block and must not call Env.Call inline (spawn a
// proc with Env.Go for outbound RPCs).
type AsyncHandler func(from ids.NodeID, m wire.Msg, reply func(wire.Msg))

// Future is a one-shot completion slot used to park a transaction until a
// deferred event (lock grant, deadlock abort) arrives.
type Future interface {
	// Complete delivers the value. Later calls are ignored.
	Complete(v any, err error)
	// Wait blocks the calling proc until Complete is called.
	Wait() (any, error)
}

// Env is one node's interface to the cluster.
type Env interface {
	// Self returns this node's ID.
	Self() ids.NodeID
	// Call performs an RPC. A call to Self() runs the local handler inline
	// with no message cost (the local GDO partition case).
	Call(to ids.NodeID, m wire.Msg) (wire.Msg, error)
	// Send delivers a one-way message.
	Send(to ids.NodeID, m wire.Msg) error
	// NewFuture creates a completion slot.
	NewFuture() Future
	// Go starts a proc (a blockable flow of control, e.g. one root
	// transaction).
	Go(fn func())
	// Sleep pauses the calling proc.
	Sleep(d time.Duration)
	// Now returns the current (virtual or wall) time since start.
	Now() time.Duration
}

// Transport-level errors.
var (
	ErrUnknownNode = errors.New("transport: unknown node")
	ErrNoHandler   = errors.New("transport: node has no handler")
	ErrClosed      = errors.New("transport: closed")
)
