package transport

import (
	"testing"
	"time"

	"lotec/internal/ids"
	"lotec/internal/stats"
	"lotec/internal/wire"
)

func TestOverlapMakespan(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		costs []time.Duration
		k     int
		want  time.Duration
	}{
		{nil, 4, 0},
		{[]time.Duration{3 * ms}, 1, 3 * ms},
		{[]time.Duration{3 * ms, 2 * ms, 1 * ms}, 1, 6 * ms},
		{[]time.Duration{3 * ms, 2 * ms, 1 * ms}, 0, 6 * ms}, // k<=1 is serial
		{[]time.Duration{3 * ms, 2 * ms, 1 * ms}, 3, 3 * ms},
		{[]time.Duration{3 * ms, 2 * ms, 1 * ms}, 16, 3 * ms}, // k > n clamps
		// Greedy earliest-free with k=2: w0=3, w1=2 then w1 takes the 2ms
		// (free at 2 < 3), w1=4; last 1ms goes to w0 → 4.
		{[]time.Duration{3 * ms, 2 * ms, 2 * ms, 1 * ms}, 2, 4 * ms},
	}
	for _, c := range cases {
		if got := OverlapMakespan(c.costs, c.k); got != c.want {
			t.Errorf("OverlapMakespan(%v, %d) = %v, want %v", c.costs, c.k, got, c.want)
		}
	}
}

// groupNet builds a 4-node simnet where node 1 fans out to 2..4.
func groupNet(t *testing.T, rec *stats.Recorder) *SimNet {
	t.Helper()
	net := NewSimNet(4, testParams(), rec)
	for n := ids.NodeID(1); n <= 4; n++ {
		net.SetHandler(n, func(from ids.NodeID, m wire.Msg) wire.Msg {
			req := m.(*wire.MultiFetchReq)
			resp := &wire.MultiFetchResp{}
			for _, o := range req.Objs {
				resp.Objs = append(resp.Objs, wire.ObjPayload{Obj: o.Obj})
			}
			return resp
		})
	}
	return net
}

func groupCalls() []GroupCall {
	var calls []GroupCall
	for n := ids.NodeID(2); n <= 4; n++ {
		calls = append(calls, GroupCall{To: n, Msg: &wire.MultiFetchReq{
			Objs: []wire.ObjPages{{Obj: ids.ObjectID(n), Pages: []ids.PageNum{0, 1}}},
		}})
	}
	return calls
}

// TestCallGroupTraceInvariance is the transport-level core of the xfer
// invariant: the simulator's recorded trace must be byte-identical at every
// concurrency, while the reported group span shrinks with concurrency.
func TestCallGroupTraceInvariance(t *testing.T) {
	run := func(k int) ([]stats.MsgRecord, time.Duration) {
		rec := stats.NewRecorder()
		net := groupNet(t, rec)
		env := net.Env(1)
		var span time.Duration
		env.Go(func() {
			results, elapsed := CallGroup(env, groupCalls(), k)
			span = elapsed
			for i, r := range results {
				if r.Err != nil {
					t.Errorf("call %d: %v", i, r.Err)
					continue
				}
				resp := r.Reply.(*wire.MultiFetchResp)
				if want := ids.ObjectID(i + 2); resp.Objs[0].Obj != want {
					t.Errorf("result %d out of order: obj %v, want %v", i, resp.Objs[0].Obj, want)
				}
			}
		})
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
		return rec.Trace(), span
	}
	trace1, span1 := run(1)
	trace4, span4 := run(4)
	if len(trace1) != len(trace4) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trace1), len(trace4))
	}
	for i := range trace1 {
		a, b := trace1[i], trace4[i]
		if a.From != b.From || a.To != b.To || a.Kind != b.Kind || a.Bytes != b.Bytes || a.Payload != b.Payload {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, a, b)
		}
	}
	if span4 >= span1 {
		t.Errorf("concurrency 4 span %v not below serial span %v", span4, span1)
	}
	// All round-trips cost the same here, so 3 calls on 4 workers overlap
	// completely: the span is one round-trip, a third of the serial span.
	if want := span1 / 3; span4 != want {
		t.Errorf("span at k=4 = %v, want one RTT %v", span4, want)
	}
}

// TestCallGroupFallbackPool exercises the generic worker-pool path (used by
// the TCP transport) through a non-GroupCaller Env wrapper.
func TestCallGroupFallbackPool(t *testing.T) {
	net := groupNet(t, nil)
	env := net.Env(1)
	// plainEnv hides the GroupCaller implementation; concurrency 1 keeps the
	// pool path single-threaded, which is required under the simulator's
	// one-proc-at-a-time scheduling.
	var results []GroupResult
	env.Go(func() {
		results, _ = CallGroup(plainEnv{env}, groupCalls(), 1)
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("call %d: %v", i, r.Err)
			continue
		}
		if want := ids.ObjectID(i + 2); r.Reply.(*wire.MultiFetchResp).Objs[0].Obj != want {
			t.Errorf("result %d out of order", i)
		}
	}
}

// plainEnv strips the GroupCaller interface from an Env.
type plainEnv struct{ Env }
