package transport

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"lotec/internal/fault"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/stats"
	"lotec/internal/wire"
)

// SimNet is a deterministic discrete-event network simulator. All nodes
// share one virtual clock; at most one proc (transaction goroutine) runs at
// any instant, and events fire in strict (time, sequence) order, so a given
// workload produces byte-identical traces on every run.
//
// Construct with NewSimNet, attach handlers, start procs with the node
// Envs' Go, then Run until quiescent.
type SimNet struct {
	params netmodel.Params
	rec    *stats.Recorder // may be nil

	mu     sync.Mutex
	now    time.Duration // guarded by mu
	seq    uint64        // guarded by mu
	pq     eventQueue    // guarded by mu
	active int           // guarded by mu; procs started and not yet finished

	// handlers, asyncHandlers, and envs are populated during setup, before
	// Run, and are read-only afterwards; they need no lock by construction.
	handlers      map[ids.NodeID]Handler
	asyncHandlers map[ids.NodeID]AsyncHandler
	envs          map[ids.NodeID]*simEnv

	// yield carries the "current proc has blocked or finished" signal back
	// to the scheduler. Procs send; only the scheduler receives.
	yield chan struct{}

	// Fault layer, installed (before Run) with InstallFaults. inj nil
	// means no fault plan: Send and Call take exactly the historical
	// code paths, byte-for-byte.
	inj    *fault.Injector
	retry  RetryPolicy
	reqCtr uint64 // guarded by mu; stamps wire.Idempotent request IDs
}

// simRetryDefaults is the virtual-clock retry policy: timeouts price how
// long a lost message stalls its caller (the simulator detects the loss
// itself, so the deadline never fires spuriously on slow big replies),
// and the attempt budget is generous enough that any recoverable fault
// plan terminates while a permanently dead peer still surfaces
// ErrUnreachable instead of hanging the run.
var simRetryDefaults = RetryPolicy{
	Attempts:    25,
	Timeout:     2 * time.Millisecond,
	BaseBackoff: 100 * time.Microsecond,
	MaxBackoff:  2 * time.Millisecond,
}

// event is one scheduled occurrence.
type event struct {
	at   time.Duration
	seq  uint64
	fire func()
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewSimNet creates a simulator for nodes 1..n with the given network
// parameters. rec may be nil to skip tracing.
func NewSimNet(n int, params netmodel.Params, rec *stats.Recorder) *SimNet {
	s := &SimNet{
		params:        params,
		rec:           rec,
		handlers:      make(map[ids.NodeID]Handler, n),
		asyncHandlers: make(map[ids.NodeID]AsyncHandler, n),
		envs:          make(map[ids.NodeID]*simEnv, n),
		yield:         make(chan struct{}),
	}
	for i := 1; i <= n; i++ {
		id := ids.NodeID(i)
		s.envs[id] = &simEnv{net: s, self: id}
	}
	return s
}

// Env returns the Env of a node (1-based).
func (s *SimNet) Env(id ids.NodeID) Env { return s.envs[id] }

// InstallFaults attaches a fault injector and retry policy. Call during
// setup, before Run. Zero policy fields fall back to the simulator
// defaults; the backoff jitter seed defaults to the plan seed.
//
// An inert injector (nil, or a plan with no rules, crashes, or
// partitions) is not installed at all: the fault layer is strictly
// pay-for-what-you-use, and with nothing to inject Send and Call must
// take exactly the historical code paths so the message trace stays
// byte-for-byte identical to a run with no plan.
func (s *SimNet) InstallFaults(inj *fault.Injector, policy RetryPolicy) {
	if !inj.Active() {
		return
	}
	s.inj = inj
	if policy.Seed == 0 {
		policy.Seed = inj.Seed()
	}
	s.retry = policy.WithDefaults(simRetryDefaults)
}

// nextReqID hands out idempotency keys for retried calls.
func (s *SimNet) nextReqID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reqCtr++
	return s.reqCtr
}

// SetHandler installs the inbound-message handler for a node.
func (s *SimNet) SetHandler(id ids.NodeID, h Handler) { s.handlers[id] = h }

// SetAsyncHandler installs a deferred-reply handler for a node. A node has
// either a Handler or an AsyncHandler; when both are set the async one
// wins. Call during setup, before Run.
func (s *SimNet) SetAsyncHandler(id ids.NodeID, h AsyncHandler) { s.asyncHandlers[id] = h }

// hasHandler reports whether anything can receive a message at id.
func (s *SimNet) hasHandler(id ids.NodeID) bool {
	if _, ok := s.asyncHandlers[id]; ok {
		return true
	}
	_, ok := s.handlers[id]
	return ok
}

// dispatch invokes the destination's handler — sync or async — and calls
// done exactly once with a non-nil reply. For sync handlers done fires
// before dispatch returns; an async handler may defer it to any later
// event. Duplicate replies from a misbehaving async handler are dropped
// here so every call site can treat done as one-shot.
func (s *SimNet) dispatch(to, from ids.NodeID, m wire.Msg, done func(wire.Msg)) {
	if ah, ok := s.asyncHandlers[to]; ok {
		fired := false
		ah(from, m, func(reply wire.Msg) {
			if fired {
				return
			}
			fired = true
			if reply == nil {
				reply = &wire.ErrResp{Msg: "no reply"}
			}
			done(reply)
		})
		return
	}
	reply := s.handlers[to](from, m)
	if reply == nil {
		reply = &wire.ErrResp{Msg: "no reply"}
	}
	done(reply)
}

// discardReply is the done callback for one-way deliveries.
func discardReply(wire.Msg) {}

// Now returns the current virtual time.
func (s *SimNet) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// schedule enqueues fn to fire at the given virtual time (>= now).
func (s *SimNet) schedule(at time.Duration, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: at, seq: s.seq, fire: fn})
}

// record traces one message if a recorder is attached.
func (s *SimNet) record(from, to ids.NodeID, m wire.Msg) {
	if s.rec == nil {
		return
	}
	rec := wire.Classify(m)
	rec.From, rec.To = from, to
	s.rec.Record(rec)
}

// latency returns the simulated transmission time of m.
func (s *SimNet) latency(m wire.Msg) time.Duration {
	return s.params.MsgTime(m.Size())
}

// Run drives the simulation until no events remain. It returns an error if
// procs are still blocked at quiescence (a protocol deadlock — the
// engine's deadlock detector should have prevented it).
func (s *SimNet) Run() error {
	for {
		s.mu.Lock()
		if s.pq.Len() == 0 {
			active := s.active
			s.mu.Unlock()
			if active > 0 {
				return fmt.Errorf("transport: simulation quiescent with %d proc(s) still blocked", active)
			}
			return nil
		}
		e := heap.Pop(&s.pq).(*event)
		s.now = e.at
		s.mu.Unlock()
		// Events run on the scheduler goroutine. An event that wakes a proc
		// blocks (inside fire) until that proc yields again, preserving the
		// one-runnable-at-a-time invariant.
		e.fire()
	}
}

// runProcUntilBlocked starts or resumes proc execution and waits for it to
// block or finish. Must be called from the scheduler goroutine only.
func (s *SimNet) waitYield() { <-s.yield }

// procYield signals the scheduler that the calling proc has blocked or
// finished. Must be called from proc goroutines only.
func (s *SimNet) procYield() { s.yield <- struct{}{} }

// simEnv is the per-node Env.
type simEnv struct {
	net  *SimNet
	self ids.NodeID
}

var _ Env = (*simEnv)(nil)
var _ GroupCaller = (*simEnv)(nil)

// Self implements Env.
func (e *simEnv) Self() ids.NodeID { return e.self }

// Now implements Env.
func (e *simEnv) Now() time.Duration { return e.net.Now() }

// Go implements Env: the proc starts at the current virtual time.
func (e *simEnv) Go(fn func()) {
	s := e.net
	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	s.schedule(s.Now(), func() {
		go func() {
			fn()
			s.mu.Lock()
			s.active--
			s.mu.Unlock()
			s.procYield()
		}()
		s.waitYield()
	})
}

// Sleep implements Env.
func (e *simEnv) Sleep(d time.Duration) {
	f := e.NewFuture()
	e.net.schedule(e.net.Now()+d, func() { f.Complete(nil, nil) })
	_, _ = f.Wait()
}

// NewFuture implements Env.
func (e *simEnv) NewFuture() Future {
	return &simFuture{net: e.net, resume: make(chan futResult, 1)}
}

// Send implements Env: schedules delivery after the message's simulated
// latency and runs the destination handler at that time.
func (e *simEnv) Send(to ids.NodeID, m wire.Msg) error {
	s := e.net
	if !s.hasHandler(to) {
		return fmt.Errorf("%w: %v", ErrNoHandler, to)
	}
	if to == e.self {
		// Local delivery: no network cost, but still deferred through the
		// event queue so handler effects stay ordered.
		s.schedule(s.Now(), func() { s.dispatch(to, e.self, m, discardReply) })
		return nil
	}
	if s.inj != nil {
		return e.sendFaulted(to, m)
	}
	s.record(e.self, to, m)
	from := e.self
	s.schedule(s.Now()+s.latency(m), func() { s.dispatch(to, from, m, discardReply) })
	return nil
}

// sendFaulted is the one-way path under an active fault plan. Idempotent
// messages (the ghost-grant ReleaseReq hand-back) are upgraded to an
// acknowledged at-least-once Call on a fresh proc, so a drop cannot
// orphan a directory lock; other one-way traffic (Grant, Abort) is
// transmitted through the injector as-is — the recoverable plans never
// drop those kinds (see fault.Partition and the presets).
func (e *simEnv) sendFaulted(to ids.NodeID, m wire.Msg) error {
	s := e.net
	if _, ok := m.(wire.Idempotent); ok {
		e.Go(func() { _, _ = e.Call(to, m) })
		return nil
	}
	from := e.self
	d := s.inj.Judge(s.Now(), from, to, m)
	if d.Drop {
		s.record(from, to, m)
		if s.rec != nil {
			s.rec.AddMsgDrop()
		}
		return nil
	}
	for i := 0; i <= d.Duplicates; i++ {
		if i > 0 && s.rec != nil {
			s.rec.AddMsgDup()
		}
		if d.Delay > 0 && s.rec != nil {
			s.rec.AddMsgDelay()
		}
		s.record(from, to, m)
		s.schedule(s.Now()+s.latency(m)+d.Delay, func() { s.dispatch(to, from, m, discardReply) })
	}
	return nil
}

// Call implements Env. Calls to self run the handler inline with no cost
// (the locally cached / co-located GDO partition case of §4.1).
func (e *simEnv) Call(to ids.NodeID, m wire.Msg) (wire.Msg, error) {
	s := e.net
	if !s.hasHandler(to) {
		return nil, fmt.Errorf("%w: %v", ErrNoHandler, to)
	}
	if to == e.self {
		if _, ok := s.asyncHandlers[to]; !ok {
			return s.handlers[to](e.self, m), nil
		}
		// A self-call into an async handler still costs nothing on the
		// wire, but the reply may be deferred, so park on a future. The
		// handler runs inline on this proc; if it replies synchronously
		// the future completes before Wait and the proc never yields.
		f := e.NewFuture()
		s.dispatch(to, e.self, m, func(reply wire.Msg) { f.Complete(reply, nil) })
		v, err := f.Wait()
		if err != nil {
			return nil, err
		}
		return v.(wire.Msg), nil
	}
	if s.inj != nil {
		return e.callFaulted(to, m)
	}
	f := e.NewFuture()
	from := e.self
	s.record(from, to, m)
	s.schedule(s.Now()+s.latency(m), func() {
		s.dispatch(to, from, m, func(reply wire.Msg) {
			s.record(to, from, reply)
			s.schedule(s.Now()+s.latency(reply), func() {
				f.Complete(reply, nil)
			})
		})
	})
	v, err := f.Wait()
	if err != nil {
		return nil, err
	}
	reply := v.(wire.Msg)
	if er, ok := reply.(*wire.ErrResp); ok {
		return nil, fmt.Errorf("transport: remote error from %v: %s", to, er.Msg)
	}
	return reply, nil
}

// callFaulted is the RPC path under an active fault plan: each attempt's
// request and reply legs pass through the injector, a lost leg arms a
// per-attempt timeout at the caller, and idempotent requests are
// retransmitted (same body request ID, so the receiver's dedup cache
// replays instead of re-executing) under the capped jittered exponential
// backoff of the retry policy. Non-idempotent messages get exactly one
// attempt — retrying them could double-execute.
func (e *simEnv) callFaulted(to ids.NodeID, m wire.Msg) (wire.Msg, error) {
	s := e.net
	var reqID uint64
	im, idem := m.(wire.Idempotent)
	if idem {
		if im.RequestID() == 0 {
			im.SetRequestID(s.nextReqID())
		}
		reqID = im.RequestID()
	}
	attempts := s.retry.Attempts
	if !idem {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		f := e.NewFuture()
		e.transmitCall(to, m, f, s.Now())
		v, err := f.Wait()
		if err == nil {
			reply := v.(wire.Msg)
			if er, ok := reply.(*wire.ErrResp); ok {
				return nil, fmt.Errorf("transport: remote error from %v: %s", to, er.Msg)
			}
			return reply, nil
		}
		// The attempt's loss timer fired.
		if s.rec != nil {
			s.rec.AddCallTimeout()
		}
		if attempts > 0 && attempt+1 >= attempts {
			return nil, fmt.Errorf("%w: call to %v: %d attempt(s) timed out: %w",
				ErrUnreachable, to, attempt+1, err)
		}
		if s.rec != nil {
			s.rec.AddCallRetry()
		}
		e.Sleep(s.retry.Backoff(reqID, attempt))
	}
}

// transmitCall puts one call attempt on the simulated wire. The simulator
// knows when it discards a leg, so instead of racing a fixed deadline
// against arbitrarily large (but intact) replies, the loss itself arms
// the caller's timeout: f completes with ErrTimeout at start+Timeout
// unless a surviving copy's reply wins first.
func (e *simEnv) transmitCall(to ids.NodeID, m wire.Msg, f Future, start time.Duration) {
	s := e.net
	from := e.self
	lose := func() {
		s.schedule(start+s.retry.Timeout, func() { f.Complete(nil, ErrTimeout) })
	}
	d := s.inj.Judge(s.Now(), from, to, m)
	if d.Drop {
		s.record(from, to, m)
		if s.rec != nil {
			s.rec.AddMsgDrop()
		}
		lose()
		return
	}
	for i := 0; i <= d.Duplicates; i++ {
		if i > 0 && s.rec != nil {
			s.rec.AddMsgDup()
		}
		if d.Delay > 0 && s.rec != nil {
			s.rec.AddMsgDelay()
		}
		s.record(from, to, m)
		s.schedule(s.Now()+s.latency(m)+d.Delay, func() {
			s.dispatch(to, from, m, func(reply wire.Msg) {
				rd := s.inj.Judge(s.Now(), to, from, reply)
				if rd.Drop {
					s.record(to, from, reply)
					if s.rec != nil {
						s.rec.AddMsgDrop()
					}
					lose()
					return
				}
				for j := 0; j <= rd.Duplicates; j++ {
					if j > 0 && s.rec != nil {
						s.rec.AddMsgDup()
					}
					if rd.Delay > 0 && s.rec != nil {
						s.rec.AddMsgDelay()
					}
					s.record(to, from, reply)
					s.schedule(s.Now()+s.latency(reply)+rd.Delay, func() {
						f.Complete(reply, nil)
					})
				}
			})
		})
	}
}

// CallGroup implements GroupCaller. The calls are issued sequentially on
// the virtual clock — the recorded message trace is therefore byte-for-byte
// identical at every concurrency level, which is the xfer pipeline's hard
// invariant (truly overlapping the virtual round-trips would reorder lock
// races at the GDO and change message counts). The k-worker overlap is
// modeled instead: each call's measured round-trip cost feeds
// OverlapMakespan, and the modeled makespan is returned as the group's
// elapsed time, following the repo's record-once/re-price methodology.
func (e *simEnv) CallGroup(calls []GroupCall, concurrency int) ([]GroupResult, time.Duration) {
	if len(calls) == 0 {
		return nil, 0
	}
	results := make([]GroupResult, len(calls))
	costs := make([]time.Duration, len(calls))
	for i, c := range calls {
		start := e.net.Now()
		results[i].Reply, results[i].Err = e.Call(c.To, c.Msg)
		costs[i] = e.net.Now() - start
	}
	return results, OverlapMakespan(costs, concurrency)
}

// futResult carries a completion.
type futResult struct {
	v   any
	err error
}

// simFuture parks a proc until completed.
//
// If Complete fires before Wait, the result is stored and Wait returns it
// without yielding. If Wait parks first, Complete schedules a wake-up event
// so the hand-off always goes through the scheduler, preserving the
// one-runnable-at-a-time invariant no matter which context calls Complete.
type simFuture struct {
	net    *SimNet
	resume chan futResult

	mu      sync.Mutex
	done    bool      // guarded by mu
	waiting bool      // guarded by mu
	res     futResult // guarded by mu
}

// Complete implements Future.
func (f *simFuture) Complete(v any, err error) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.done = true
	res := futResult{v: v, err: err}
	f.res = res
	waiting := f.waiting
	f.mu.Unlock()
	if !waiting {
		return // Wait will pick the result up synchronously
	}
	// The wake-up event sends the captured result rather than re-reading
	// f.res outside the lock.
	s := f.net
	s.schedule(s.Now(), func() {
		f.resume <- res
		s.waitYield()
	})
}

// Wait implements Future. Must be called from a proc.
func (f *simFuture) Wait() (any, error) {
	f.mu.Lock()
	if f.done {
		r := f.res
		f.mu.Unlock()
		return r.v, r.err
	}
	f.waiting = true
	f.mu.Unlock()
	f.net.procYield()
	r := <-f.resume
	return r.v, r.err
}
