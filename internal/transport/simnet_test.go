package transport

import (
	"strings"
	"testing"
	"time"

	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/stats"
	"lotec/internal/wire"
)

func testParams() netmodel.Params {
	return netmodel.Ethernet100.WithSoftwareCost(10 * time.Microsecond)
}

func TestCallRoundTrip(t *testing.T) {
	rec := stats.NewRecorder()
	net := NewSimNet(2, testParams(), rec)
	net.SetHandler(2, func(from ids.NodeID, m wire.Msg) wire.Msg {
		req, ok := m.(*wire.CopySetReq)
		if !ok {
			t.Errorf("handler got %T", m)
			return &wire.ErrResp{Msg: "bad type"}
		}
		if from != 1 || len(req.Objs) != 1 || req.Objs[0] != 7 {
			t.Errorf("from=%v objs=%v", from, req.Objs)
		}
		return &wire.CopySetResp{Sets: []wire.CopySet{{Obj: 7, Sites: []ids.NodeID{1, 2}}}}
	})
	var got *wire.CopySetResp
	env1 := net.Env(1)
	env1.Go(func() {
		reply, err := env1.Call(2, &wire.CopySetReq{Objs: []ids.ObjectID{7}})
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		got = reply.(*wire.CopySetResp)
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got.Sets) != 1 || len(got.Sets[0].Sites) != 2 {
		t.Fatalf("reply = %+v", got)
	}
	// Two messages traced: request + reply.
	if rec.MsgCount() != 2 {
		t.Errorf("traced %d messages, want 2", rec.MsgCount())
	}
}

func TestCallToSelfInlineNoTrace(t *testing.T) {
	rec := stats.NewRecorder()
	net := NewSimNet(1, testParams(), rec)
	net.SetHandler(1, func(from ids.NodeID, m wire.Msg) wire.Msg {
		return &wire.PushResp{}
	})
	env := net.Env(1)
	var start, end time.Duration
	env.Go(func() {
		start = env.Now()
		if _, err := env.Call(1, &wire.CopySetReq{Objs: []ids.ObjectID{1}}); err != nil {
			t.Errorf("self call: %v", err)
		}
		end = env.Now()
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.MsgCount() != 0 {
		t.Errorf("self-call traced %d messages", rec.MsgCount())
	}
	if start != end {
		t.Errorf("self-call advanced time %v → %v", start, end)
	}
}

func TestCallAdvancesVirtualClock(t *testing.T) {
	p := testParams()
	net := NewSimNet(2, p, nil)
	net.SetHandler(2, func(ids.NodeID, wire.Msg) wire.Msg { return &wire.PushResp{} })
	env := net.Env(1)
	var elapsed time.Duration
	env.Go(func() {
		req := &wire.CopySetReq{Objs: []ids.ObjectID{1}}
		t0 := env.Now()
		if _, err := env.Call(2, req); err != nil {
			t.Errorf("Call: %v", err)
		}
		elapsed = env.Now() - t0
		want := p.MsgTime(req.Size()) + p.MsgTime((&wire.PushResp{}).Size())
		if elapsed != want {
			t.Errorf("RTT = %v, want %v", elapsed, want)
		}
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed == 0 {
		t.Fatal("proc never ran")
	}
}

func TestCallErrors(t *testing.T) {
	net := NewSimNet(2, testParams(), nil)
	net.SetHandler(2, func(ids.NodeID, wire.Msg) wire.Msg {
		return &wire.ErrResp{Msg: "denied"}
	})
	env := net.Env(1)
	env.Go(func() {
		if _, err := env.Call(3, &wire.CopySetReq{}); err == nil {
			t.Error("call to unknown node should fail")
		}
		_, err := env.Call(2, &wire.CopySetReq{})
		if err == nil || !strings.Contains(err.Error(), "denied") {
			t.Errorf("ErrResp not surfaced: %v", err)
		}
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendOneWay(t *testing.T) {
	net := NewSimNet(2, testParams(), nil)
	var got []ids.ObjectID
	net.SetHandler(2, func(from ids.NodeID, m wire.Msg) wire.Msg {
		got = append(got, m.(*wire.CopySetReq).Objs[0])
		return nil
	})
	env := net.Env(1)
	env.Go(func() {
		for i := 0; i < 3; i++ {
			if err := env.Send(2, &wire.CopySetReq{Objs: []ids.ObjectID{ids.ObjectID(i)}}); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
		if err := env.Send(9, &wire.CopySetReq{}); err == nil {
			t.Error("send to unknown node should fail")
		}
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("delivered = %v", got)
	}
}

func TestSleepOrdersProcs(t *testing.T) {
	net := NewSimNet(1, testParams(), nil)
	env := net.Env(1)
	var order []string
	env.Go(func() {
		env.Sleep(30 * time.Microsecond)
		order = append(order, "late")
	})
	env.Go(func() {
		env.Sleep(10 * time.Microsecond)
		order = append(order, "early")
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Errorf("order = %v", order)
	}
	if got := net.Now(); got != 30*time.Microsecond {
		t.Errorf("final time = %v", got)
	}
}

func TestFutureCompleteBeforeWait(t *testing.T) {
	net := NewSimNet(1, testParams(), nil)
	env := net.Env(1)
	var got any
	env.Go(func() {
		f := env.NewFuture()
		f.Complete("early", nil)
		f.Complete("ignored", nil) // second complete dropped
		v, err := f.Wait()
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		got = v
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "early" {
		t.Errorf("got %v", got)
	}
}

func TestFutureCrossProcHandoff(t *testing.T) {
	net := NewSimNet(1, testParams(), nil)
	env := net.Env(1)
	f := env.NewFuture()
	var got any
	env.Go(func() {
		v, err := f.Wait()
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		got = v
	})
	env.Go(func() {
		env.Sleep(5 * time.Microsecond)
		f.Complete(42, nil)
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got %v", got)
	}
}

func TestRunDetectsStuckProcs(t *testing.T) {
	net := NewSimNet(1, testParams(), nil)
	env := net.Env(1)
	env.Go(func() {
		f := env.NewFuture()
		_, _ = f.Wait() // never completed
	})
	err := net.Run()
	if err == nil || !strings.Contains(err.Error(), "blocked") {
		t.Fatalf("Run = %v, want stuck-proc error", err)
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() []stats.MsgRecord {
		rec := stats.NewRecorder()
		net := NewSimNet(3, testParams(), rec)
		for n := ids.NodeID(1); n <= 3; n++ {
			net.SetHandler(n, func(from ids.NodeID, m wire.Msg) wire.Msg {
				return &wire.PushResp{}
			})
		}
		for n := ids.NodeID(1); n <= 3; n++ {
			env := net.Env(n)
			self := n
			env.Go(func() {
				for i := 0; i < 5; i++ {
					dst := ids.NodeID(int(self)%3 + 1)
					if _, err := env.Call(dst, &wire.CopySetReq{Objs: []ids.ObjectID{ids.ObjectID(i)}}); err != nil {
						t.Errorf("call: %v", err)
					}
					env.Sleep(time.Duration(self) * time.Microsecond)
				}
			})
		}
		if err := net.Run(); err != nil {
			t.Fatal(err)
		}
		return rec.Trace()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		if ra.From != rb.From || ra.To != rb.To || ra.Obj != rb.Obj ||
			ra.Kind != rb.Kind || ra.Bytes != rb.Bytes {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHandlerSendsDuringDelivery(t *testing.T) {
	// A handler forwarding a message (grant-style) must work.
	net := NewSimNet(3, testParams(), nil)
	var landed bool
	env2 := net.Env(2)
	net.SetHandler(2, func(from ids.NodeID, m wire.Msg) wire.Msg {
		if err := env2.Send(3, m); err != nil {
			t.Errorf("forward: %v", err)
		}
		return &wire.PushResp{}
	})
	net.SetHandler(3, func(from ids.NodeID, m wire.Msg) wire.Msg {
		landed = true
		return nil
	})
	env := net.Env(1)
	env.Go(func() {
		if _, err := env.Call(2, &wire.CopySetReq{Objs: []ids.ObjectID{1}}); err != nil {
			t.Errorf("call: %v", err)
		}
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if !landed {
		t.Error("forwarded message never delivered")
	}
}
