package transport

import (
	"sync"
	"time"

	"lotec/internal/ids"
	"lotec/internal/wire"
)

// GroupCall is one RPC of a batched fan-out (the xfer gather/push stage
// issues one per source or destination site).
type GroupCall struct {
	To  ids.NodeID
	Msg wire.Msg
}

// GroupResult is the outcome of one GroupCall, in call order.
type GroupResult struct {
	Reply wire.Msg
	Err   error
}

// GroupCaller is implemented by Envs that have their own way of issuing a
// bounded-concurrency fan-out. SimNet implements it to keep the message
// trace deterministic: it issues the calls sequentially on the virtual
// clock (so byte/message counters are identical at any concurrency) and
// separately models the k-worker overlap, returning the modeled makespan as
// the group's elapsed time.
type GroupCaller interface {
	CallGroup(calls []GroupCall, concurrency int) ([]GroupResult, time.Duration)
}

// CallGroup issues the calls through env with at most concurrency in
// flight, returning per-call results in call order and the elapsed
// wall-clock span of the whole group. Envs implementing GroupCaller (the
// simulator) use their own overlap accounting; otherwise a goroutine worker
// pool provides real concurrency (the TCP transport).
func CallGroup(env Env, calls []GroupCall, concurrency int) ([]GroupResult, time.Duration) {
	if gc, ok := env.(GroupCaller); ok {
		return gc.CallGroup(calls, concurrency)
	}
	if len(calls) == 0 {
		return nil, 0
	}
	start := env.Now()
	results := make([]GroupResult, len(calls))
	if concurrency <= 1 || len(calls) == 1 {
		for i, c := range calls {
			results[i].Reply, results[i].Err = env.Call(c.To, c.Msg)
		}
		return results, env.Now() - start
	}
	if concurrency > len(calls) {
		concurrency = len(calls)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(concurrency)
	for w := 0; w < concurrency; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(calls) {
					return
				}
				results[i].Reply, results[i].Err = env.Call(calls[i].To, calls[i].Msg)
			}
		}()
	}
	wg.Wait()
	return results, env.Now() - start
}

// OverlapMakespan models running the given per-call round-trip costs on k
// workers, assigning each call in order to the earliest-free worker, and
// returns the resulting makespan. k <= 1 degenerates to the serial sum.
// SimNet uses this to price a concurrent gather without perturbing the
// deterministic message trace.
func OverlapMakespan(costs []time.Duration, k int) time.Duration {
	if len(costs) == 0 {
		return 0
	}
	if k <= 1 {
		var sum time.Duration
		for _, c := range costs {
			sum += c
		}
		return sum
	}
	if k > len(costs) {
		k = len(costs)
	}
	free := make([]time.Duration, k)
	for _, c := range costs {
		// Earliest-free worker takes the next call.
		minIdx := 0
		for i := 1; i < k; i++ {
			if free[i] < free[minIdx] {
				minIdx = i
			}
		}
		free[minIdx] += c
	}
	var span time.Duration
	for _, f := range free {
		if f > span {
			span = f
		}
	}
	return span
}
