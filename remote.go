package lotec

import (
	"fmt"

	"lotec/internal/core"
	"lotec/internal/fault"
	"lotec/internal/ids"
	"lotec/internal/server"
	"lotec/internal/transport"
)

// Distributed deployment: the same engine the simulated Cluster runs, over
// real TCP. A deployment is one GDO directory service plus N node (site)
// processes; clients connect to any node and submit root transactions.

// Topology lays out a TCP deployment: node i+1 serves at NodeAddrs[i], and
// the GDO directory serves at GDOAddr.
type Topology = server.Topology

// GDO is a running directory service.
type GDO struct{ inner *server.GDOServer }

// StartGDO starts the directory service of a deployment.
func StartGDO(topo Topology) (*GDO, error) {
	return StartGDOWith(GDOOptions{Topology: topo})
}

// GDOOptions configures the directory service.
type GDOOptions struct {
	// Topology is the shared deployment layout.
	Topology Topology
	// FaultPlan, when non-empty, injects deterministic faults into the
	// directory's outbound traffic (a preset name like "drop" or a clause
	// list like "drop(p=0.1);delay(p=0.2,d=1ms)" — see the fault package).
	FaultPlan string
	// FaultSeed drives the plan's random draws.
	FaultSeed uint64
}

// StartGDOWith starts the directory service with explicit options.
func StartGDOWith(opts GDOOptions) (*GDO, error) {
	g := server.NewGDOServer(opts.Topology)
	if opts.FaultPlan != "" {
		plan, err := fault.Parse(opts.FaultPlan, opts.FaultSeed)
		if err != nil {
			return nil, fmt.Errorf("lotec: fault plan: %w", err)
		}
		g.InstallFaults(*plan, transport.RetryPolicy{})
	}
	if err := g.Start(); err != nil {
		return nil, err
	}
	return &GDO{inner: g}, nil
}

// Addr returns the directory's bound address.
func (g *GDO) Addr() string { return g.inner.Addr() }

// Close stops the directory.
func (g *GDO) Close() error { return g.inner.Close() }

// NodeOptions configures one node of a TCP deployment.
type NodeOptions struct {
	// Topology is the shared deployment layout.
	Topology Topology
	// Self is this node's 1-based ID.
	Self NodeID
	// Protocol must match cluster-wide (default LOTEC).
	Protocol Protocol
	// PageSize must match cluster-wide (default 4096).
	PageSize int
	// Lenient disables strict declared-access checking.
	Lenient bool
	// FetchConcurrency bounds the in-flight per-site calls of one page
	// transfer fan-out (0 → default 4). On TCP the calls genuinely
	// overlap; counters are unchanged at any setting.
	FetchConcurrency int
	// DeltaOff disables sub-page delta transfers; must match cluster-wide.
	DeltaOff bool
	// DeltaJournalDepth bounds the per-page dirty-range journal (0 →
	// default 8); must match cluster-wide.
	DeltaJournalDepth int
	// FaultPlan, when non-empty, injects deterministic faults into this
	// node's outbound traffic and enables the RPC timeout/retry layer (a
	// preset name like "drop" or a clause list like
	// "drop(p=0.1);delay(p=0.2,d=1ms)" — see the fault package).
	FaultPlan string
	// FaultSeed drives the plan's random draws.
	FaultSeed uint64
}

// Node is a running LOTEC site.
type Node struct{ inner *server.NodeServer }

// NewNode assembles a node; add classes, bodies and objects, then Start.
func NewNode(opts NodeOptions) (*Node, error) {
	var p core.Protocol
	if opts.Protocol != nil {
		p = opts.Protocol
	}
	var plan *fault.Plan
	if opts.FaultPlan != "" {
		parsed, err := fault.Parse(opts.FaultPlan, opts.FaultSeed)
		if err != nil {
			return nil, fmt.Errorf("lotec: fault plan: %w", err)
		}
		plan = parsed
	}
	inner, err := server.NewNodeServer(server.NodeConfig{
		Topology:          opts.Topology,
		Self:              opts.Self,
		Protocol:          p,
		PageSize:          opts.PageSize,
		Lenient:           opts.Lenient,
		FetchConcurrency:  opts.FetchConcurrency,
		DeltaOff:          opts.DeltaOff,
		DeltaJournalDepth: opts.DeltaJournalDepth,
		Faults:            plan,
	})
	if err != nil {
		return nil, err
	}
	return &Node{inner: inner}, nil
}

// AddClass registers a class at this node. Every node must register the
// same classes — the schema ships with the application binary.
func (n *Node) AddClass(cls *Class) error { return n.inner.AddClass(cls) }

// OnMethod registers a method body at this node.
func (n *Node) OnMethod(cls *Class, method string, fn MethodFunc) error {
	return n.inner.OnMethod(cls, method, fn)
}

// CreateObject registers an object. Call on every node with identical
// arguments; the owner node additionally registers it with the GDO, so
// start the owner's call first.
func (n *Node) CreateObject(obj ObjectID, class ClassID, owner NodeID) error {
	return n.inner.CreateObject(obj, class, owner)
}

// Start begins serving protocol traffic and client transactions.
func (n *Node) Start() error { return n.inner.Start() }

// Addr returns the node's bound address.
func (n *Node) Addr() string { return n.inner.Addr() }

// Close stops the node.
func (n *Node) Close() error { return n.inner.Close() }

// Run executes a root transaction at this node (in-process entry point;
// remote clients use Dial).
func (n *Node) Run(obj ObjectID, method string, arg []byte) ([]byte, error) {
	return n.inner.Run(obj, method, arg)
}

// Client submits transactions to a remote node.
type Client struct{ inner *server.Client }

// Dial connects to the node with the given ID at addr.
func Dial(addr string, node NodeID) (*Client, error) {
	c, err := server.Dial(addr, ids.NodeID(node))
	if err != nil {
		return nil, err
	}
	return &Client{inner: c}, nil
}

// Run executes method on obj as a root transaction at the connected node.
func (c *Client) Run(obj ObjectID, method string, arg []byte) ([]byte, error) {
	return c.inner.Run(obj, method, arg)
}

// Close disconnects the client.
func (c *Client) Close() error { return c.inner.Close() }
