package lotec_test

import (
	"encoding/binary"
	"fmt"

	"lotec"
)

// Example demonstrates the whole programming model: declare a class with
// conservative access sets, register a body, create an object, and run
// transactions from different nodes of a simulated cluster.
func Example() {
	cluster, err := lotec.NewCluster(lotec.Options{Nodes: 3, Protocol: lotec.LOTEC})
	if err != nil {
		panic(err)
	}

	counter, err := lotec.NewClass(1, "Counter").
		Attr("value", 8).
		Attr("history", 4096).
		Method(lotec.MethodSpec{Name: "add", Writes: []string{"value"}}).
		Method(lotec.MethodSpec{Name: "get", Reads: []string{"value"}}).
		Build()
	if err != nil {
		panic(err)
	}
	cluster.MustAddClass(counter)

	cluster.MustOnMethod(counter, "add", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("value")
		if err != nil {
			return err
		}
		next := binary.LittleEndian.Uint64(cur) + binary.LittleEndian.Uint64(ctx.Arg())
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, next)
		return ctx.Write("value", out)
	})
	cluster.MustOnMethod(counter, "get", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("value")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	})

	obj, err := cluster.NewObject(counter.ID, 1)
	if err != nil {
		panic(err)
	}
	arg := make([]byte, 8)
	binary.LittleEndian.PutUint64(arg, 5)
	for node := lotec.NodeID(1); node <= 3; node++ {
		if _, err := cluster.Exec(node, obj, "add", arg); err != nil {
			panic(err)
		}
	}
	out, err := cluster.Exec(2, obj, "get", nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("counter:", binary.LittleEndian.Uint64(out))
	// Output: counter: 15
}

// ExampleCtx_InvokeAll shows intra-family parallelism: a coordinator method
// fans sub-transactions out to several objects concurrently and joins them.
func ExampleCtx_InvokeAll() {
	cluster, err := lotec.NewCluster(lotec.Options{Nodes: 2})
	if err != nil {
		panic(err)
	}
	item, err := lotec.NewClass(1, "Item").
		Attr("stock", 8).
		Method(lotec.MethodSpec{Name: "reserve", Writes: []string{"stock"}}).
		Build()
	if err != nil {
		panic(err)
	}
	order, err := lotec.NewClass(2, "Order").
		Attr("state", 8).
		Method(lotec.MethodSpec{Name: "placeOrder", Writes: []string{"state"}}).
		Build()
	if err != nil {
		panic(err)
	}
	cluster.MustAddClass(item)
	cluster.MustAddClass(order)
	cluster.MustOnMethod(item, "reserve", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("stock")
		if err != nil {
			return err
		}
		cur[0]++
		return ctx.Write("stock", cur)
	})

	itemA, _ := cluster.NewObject(item.ID, 1)
	itemB, _ := cluster.NewObject(item.ID, 2)
	cluster.MustOnMethod(order, "placeOrder", func(ctx *lotec.Ctx) error {
		results := ctx.InvokeAll([]lotec.InvokeSpec{
			{Obj: itemA, Method: "reserve"},
			{Obj: itemB, Method: "reserve"},
		})
		for _, r := range results {
			if r.Err != nil {
				return r.Err // aborts the whole order
			}
		}
		return ctx.Write("state", []byte{1, 0, 0, 0, 0, 0, 0, 0})
	})

	ord, _ := cluster.NewObject(order.ID, 1)
	if _, err := cluster.Exec(1, ord, "placeOrder", nil); err != nil {
		panic(err)
	}
	fmt.Println("order placed")
	// Output: order placed
}
