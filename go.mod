module lotec

go 1.22
