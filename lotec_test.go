package lotec_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"lotec"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func dec64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// buildBank assembles a small banking schema on a cluster.
func buildBank(t *testing.T, opts lotec.Options) (*lotec.Cluster, *lotec.Class) {
	t.Helper()
	c, err := lotec.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	account, err := lotec.NewClass(1, "Account").
		Attr("balance", 8).
		Attr("history", 64).
		Method(lotec.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Method(lotec.MethodSpec{Name: "withdraw", Writes: []string{"balance"}}).
		Method(lotec.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	c.MustAddClass(account)
	c.MustOnMethod(account, "deposit", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		next := dec64(cur) + dec64(ctx.Arg())
		if err := ctx.Write("balance", i64(next)); err != nil {
			return err
		}
		ctx.SetResult(i64(next))
		return nil
	})
	c.MustOnMethod(account, "withdraw", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		if dec64(cur) < dec64(ctx.Arg()) {
			return errors.New("insufficient funds")
		}
		return ctx.Write("balance", i64(dec64(cur)-dec64(ctx.Arg())))
	})
	c.MustOnMethod(account, "peek", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	})
	return c, account
}

func TestClusterExec(t *testing.T) {
	c, account := buildBank(t, lotec.Options{Nodes: 3, PageSize: 256})
	obj, err := c.NewObject(account.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Exec(2, obj, "deposit", i64(40))
	if err != nil {
		t.Fatal(err)
	}
	if dec64(out) != 40 {
		t.Errorf("deposit = %d", dec64(out))
	}
	out, err = c.Exec(3, obj, "peek", nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec64(out) != 40 {
		t.Errorf("peek at third node = %d, want 40", dec64(out))
	}
	if _, err := c.Exec(1, obj, "withdraw", i64(100)); err == nil {
		t.Error("overdraft should fail")
	}
	out, _ = c.Exec(1, obj, "peek", nil)
	if dec64(out) != 40 {
		t.Errorf("balance after failed withdraw = %d", dec64(out))
	}
	if c.Counters().Commits != 3 {
		t.Errorf("commits = %d", c.Counters().Commits)
	}
	if c.TotalStats().TotalBytes() == 0 {
		t.Error("no consistency traffic recorded")
	}
	if c.ObjectStats(obj).Msgs == 0 {
		t.Error("no per-object traffic")
	}
	if c.TransferTime(obj, lotec.Gigabit) == 0 {
		t.Error("zero transfer time")
	}
	final, err := c.ObjectBytes(obj)
	if err != nil {
		t.Fatal(err)
	}
	if dec64(final[:8]) != 40 {
		t.Error("ObjectBytes disagrees with peek")
	}
}

func TestClusterSubmitRunResults(t *testing.T) {
	c, account := buildBank(t, lotec.Options{Nodes: 2, PageSize: 256, Protocol: lotec.OTEC})
	obj, err := c.NewObject(account.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Submit(time.Duration(i)*time.Millisecond, lotec.NodeID(i%2+1), obj, "deposit", i64(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	rs := c.Results()
	if len(rs) != 5 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("%s on %v: %v", r.Method, r.Obj, r.Err)
		}
	}
	out, err := c.Exec(1, obj, "peek", nil)
	if err != nil || dec64(out) != 10 {
		t.Errorf("final balance = %d, %v", dec64(out), err)
	}
	if c.Protocol().Name() != "OTEC" {
		t.Errorf("protocol = %s", c.Protocol().Name())
	}
	if c.Now() == 0 {
		t.Error("virtual clock did not advance")
	}
}

func TestProtocolByName(t *testing.T) {
	for _, name := range []string{"COTEC", "OTEC", "LOTEC", "RC"} {
		p, err := lotec.ProtocolByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ProtocolByName(%s) = %v, %v", name, p, err)
		}
	}
	if _, err := lotec.ProtocolByName("XYZ"); err == nil {
		t.Error("unknown protocol should fail")
	}
}

func TestStrictModeSurfacesUndeclaredAccess(t *testing.T) {
	c, err := lotec.NewCluster(lotec.Options{Nodes: 1, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := lotec.NewClass(1, "Sneaky").
		Attr("a", 8).
		Attr("b", 8).
		Method(lotec.MethodSpec{Name: "m", Writes: []string{"a"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	c.MustAddClass(cls)
	c.MustOnMethod(cls, "m", func(ctx *lotec.Ctx) error {
		return ctx.Write("b", i64(1)) // undeclared
	})
	obj, err := c.NewObject(cls.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(1, obj, "m", nil); !errors.Is(err, lotec.ErrUndeclaredAccess) {
		t.Errorf("err = %v, want ErrUndeclaredAccess", err)
	}
}

func TestRemoteDeployment(t *testing.T) {
	// Reserve loopback addresses.
	var addrs []string
	var ls []net.Listener
	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls = append(ls, l)
		addrs = append(addrs, l.Addr().String())
	}
	for _, l := range ls {
		_ = l.Close()
	}
	topo := lotec.Topology{NodeAddrs: addrs[:2], GDOAddr: addrs[2]}

	g, err := lotec.StartGDO(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	account, err := lotec.NewClass(1, "Account").
		Attr("balance", 8).
		Method(lotec.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Method(lotec.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*lotec.Node
	for i := 1; i <= 2; i++ {
		n, err := lotec.NewNode(lotec.NodeOptions{Topology: topo, Self: lotec.NodeID(i), PageSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.AddClass(account); err != nil {
			t.Fatal(err)
		}
		if err := n.OnMethod(account, "deposit", func(ctx *lotec.Ctx) error {
			cur, err := ctx.Read("balance")
			if err != nil {
				return err
			}
			return ctx.Write("balance", i64(dec64(cur)+dec64(ctx.Arg())))
		}); err != nil {
			t.Fatal(err)
		}
		if err := n.OnMethod(account, "peek", func(ctx *lotec.Ctx) error {
			cur, err := ctx.Read("balance")
			if err != nil {
				return err
			}
			ctx.SetResult(cur)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	// Owner creates first, then the peer.
	if err := nodes[0].CreateObject(1, account.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].CreateObject(1, account.ID, 1); err != nil {
		t.Fatal(err)
	}

	client, err := lotec.Dial(topo.NodeAddrs[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Run(1, "deposit", i64(11)); err != nil {
		t.Fatal(err)
	}
	out, err := nodes[0].Run(1, "peek", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, i64(11)) {
		t.Errorf("remote peek = %d, want 11", dec64(out))
	}
	if g.Addr() == "" || nodes[0].Addr() == "" {
		t.Error("addresses not reported")
	}
}
