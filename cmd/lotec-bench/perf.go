package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"lotec/internal/directory"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
	"lotec/internal/wire"
)

// Per-path perf ledger: microbenchmarks over the pooled data-plane
// primitives (codec encode/decode, frame read/write) and the directory
// acquire/release fast path. Each row lands in BENCH_results.json next to
// the workload rows, and the smoke gate reruns the set against the
// committed values — the continuous record of where each hot path's
// ns/op and allocs/op stand.

// perfMsg builds the representative data-plane message the codec and frame
// rows price: a one-page fetch reply, the most common payload-carrying
// frame on a LOTEC wire.
func perfMsg() (wire.Envelope, *wire.FetchResp) {
	page := make([]byte, 256)
	for i := range page {
		page[i] = byte(i)
	}
	env := wire.Envelope{ReqID: 42, From: 1, To: 2}
	return env, &wire.FetchResp{
		Obj:   ids.ObjectID(7),
		Pages: []wire.PagePayload{{Page: 3, Version: 9, Data: page}},
	}
}

// benchRow runs one Go benchmark function and flattens its result into a
// ledger row.
func benchRow(op string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return benchResult{
		Op:          op,
		Ops:         r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
	}
}

// countWriter swallows writes without allocating — the in-memory stand-in
// for a TCP connection's Write in the frame-write row.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// perfLedger measures every hot-path row. The codec/frame rows exercise the
// pooled encode buffers and in-place decode views end to end; the directory
// row exercises the scratch-backed acquire/release path with immediate
// grants. Steady-state allocations per op should stay near zero on the
// pooled paths and small and constant on decode (the message struct and its
// payload headers; page bytes alias the frame).
func perfLedger() ([]benchResult, error) {
	env, msg := perfMsg()

	rows := []benchResult{
		benchRow("perf/codec-encode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				frame := wire.EncodeFrame(env, msg)
				wire.ReleaseFrame(frame)
			}
		}),
	}

	encoded := wire.Encode(env, msg)
	rows = append(rows, benchRow("perf/codec-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := wire.DecodeView(encoded); err != nil {
				b.Fatal(err)
			}
		}
	}))

	framed := wire.EncodeFrame(env, msg)
	stream := append([]byte(nil), framed...)
	wire.ReleaseFrame(framed)
	rows = append(rows, benchRow("perf/frame-read", func(b *testing.B) {
		r := bytes.NewReader(stream)
		for i := 0; i < b.N; i++ {
			r.Reset(stream)
			buf, err := wire.ReadFrame(r)
			if err != nil {
				b.Fatal(err)
			}
			wire.ReleaseFrame(buf)
		}
	}))

	rows = append(rows, benchRow("perf/frame-write", func(b *testing.B) {
		var sink countWriter
		for i := 0; i < b.N; i++ {
			frame := wire.EncodeFrame(env, msg)
			if _, err := sink.Write(frame); err != nil {
				b.Fatal(err)
			}
			wire.ReleaseFrame(frame)
		}
	}))

	var dirErr error
	rows = append(rows, benchRow("perf/directory-acquire-release", func(b *testing.B) {
		const objects = 64
		s := directory.NewSharded(1, 1)
		for o := ids.ObjectID(1); o <= objects; o++ {
			if err := s.Register(o, 1, 1); err != nil {
				dirErr = err
				b.Skip(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			obj := ids.ObjectID(i%objects + 1)
			fam := ids.FamilyID(i + 1)
			ref := ids.TxRef{Tx: ids.TxID(fam), Node: 1}
			if _, _, err := s.Acquire(obj, ref, fam, uint64(fam), 1, o2pl.Write); err != nil {
				dirErr = err
				b.Skip(err)
			}
			if _, _, err := s.Release(fam, 1, false, []gdo.ObjectRelease{{Obj: obj}}); err != nil {
				dirErr = err
				b.Skip(err)
			}
		}
	}))
	if dirErr != nil {
		return nil, fmt.Errorf("perf ledger: directory row: %w", dirErr)
	}

	for _, r := range rows {
		fmt.Printf("%-32s %10d ops  %8.0f ns/op  %6.2f allocs/op\n", r.Op, r.Ops, r.NsPerOp, r.AllocsPerOp)
	}
	return rows, nil
}

// checkPerfLedger is the smoke gate over the per-path rows: rerun the
// ledger and compare each row against the committed one. ns/op gets the
// wide wall-clock slack; allocs/op gets the tight multiplicative band plus
// half an allocation of absolute headroom, so a pooled path committed at
// zero still fails the moment a real per-op allocation appears.
func checkPerfLedger(path string) error {
	doc, err := readBenchDoc(path)
	if err != nil {
		return err
	}
	committed := make(map[string]benchResult)
	for _, r := range doc.Results {
		if strings.HasPrefix(r.Op, "perf/") {
			committed[r.Op] = r
		}
	}
	if len(committed) == 0 {
		fmt.Printf("smoke: no perf/ rows in %s; skipping per-path gates\n", path)
		return nil
	}
	rows, err := perfLedger()
	if err != nil {
		return err
	}
	for _, got := range rows {
		base, ok := committed[got.Op]
		if !ok {
			fmt.Printf("smoke: %s has no committed row; skipping\n", got.Op)
			continue
		}
		if base.NsPerOp > 0 && got.NsPerOp > base.NsPerOp*smokeNsSlack {
			return fmt.Errorf("ns_per_op regressed: %s runs at %.0f ns/op, committed %.0f (limit %.0fx)",
				got.Op, got.NsPerOp, base.NsPerOp, smokeNsSlack)
		}
		if limit := base.AllocsPerOp*smokeAllocsSlack + 0.5; got.AllocsPerOp > limit {
			return fmt.Errorf("allocs_per_op regressed: %s allocates %.2f/op, committed %.2f (limit %.2f)",
				got.Op, got.AllocsPerOp, base.AllocsPerOp, limit)
		}
	}
	fmt.Printf("smoke ok: %d perf/ rows within slack\n", len(rows))
	return nil
}
