// The calibrate loop (-calibrate): run the identical compiled workload
// twice — once on the deterministic simulator in the TCP-shaped topology
// (the GDO on its own node, every directory op a wire round trip), once on
// a real in-process TCP deployment — and compare what the model predicted
// against what the wire measured, per client class and globally. The
// predicted-vs-measured table lands in BENCH_results.json under
// "calibration", and an accuracy gate fails the run when the model drifts:
// commit/abort counts must match exactly (injected aborts are seed-pure on
// both runtimes), traffic volume within a tolerance band. Latencies are
// reported but never gated — virtual nanoseconds and loopback wall clock
// are different quantities; the table exists so the divergence is visible.
package main

import (
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"lotec/internal/core"
	"lotec/internal/ids"
	"lotec/internal/server"
	"lotec/internal/sim"
	"lotec/internal/stats"
	"lotec/internal/workload"
)

// Tolerance bands for the gated traffic KPIs. The simulator and the TCP
// runtime run the same engine on the same schedule, but real scheduling
// reorders lock grants and ownership migration, so fetch/push counts
// legitimately wander; the band is where "same protocol, different
// interleaving" ends and "model is wrong" begins.
const (
	calibBytesTol = 0.35
	calibMsgsTol  = 0.35
)

// calibRow is one line of the predicted-vs-measured table.
type calibRow struct {
	KPI       string  `json:"kpi"`
	Class     string  `json:"class,omitempty"`
	Predicted float64 `json:"predicted"`
	Measured  float64 `json:"measured"`
	// RelErr is |measured-predicted| / |predicted| (measured as the
	// denominator when the prediction is zero; 0 when both are).
	RelErr float64 `json:"rel_err"`
	// Gated rows fail the calibration when RelErr exceeds Limit.
	Gated bool    `json:"gated"`
	Limit float64 `json:"limit,omitempty"`
}

// latencyError is the netmodel's latency accuracy for one class: the
// relative error of each reported latency statistic (virtual clock vs TCP
// wall clock) and their mean. Never gated — the two clocks measure
// different quantities — but recorded explicitly so model drift is a
// first-class, trendable number instead of four table rows.
type latencyError struct {
	Class   string  `json:"class,omitempty"`
	P50     float64 `json:"p50_rel_err"`
	P95     float64 `json:"p95_rel_err"`
	P99     float64 `json:"p99_rel_err"`
	Mean    float64 `json:"mean_rel_err"`
	Overall float64 `json:"overall_rel_err"`
}

// calibration is the "calibration" section of BENCH_results.json.
type calibration struct {
	Provenance workload.Provenance `json:"provenance"`
	Predicted  []workload.ClassKPI `json:"predicted"`
	Measured   []workload.ClassKPI `json:"measured"`
	Table      []calibRow          `json:"table"`
	// LatencyError is the per-class netmodel latency error, plus an
	// aggregate row (empty class) averaging across classes.
	LatencyError []latencyError `json:"latency_error"`
	Pass         bool           `json:"pass"`
}

// calibRun is what one runtime reports for the shared schedule.
type calibRun struct {
	kpis  []workload.ClassKPI
	bytes int64 // consistency data traffic (DataBytes)
	msgs  int64 // protocol messages, server-only kinds excluded
}

// serverOnlyKind reports whether a message kind exists only on the TCP
// runtime (object registration, client dispatch, error replies). The
// simulator submits roots and creates objects in-process, so these kinds
// never appear in its trace and must not count against the model.
func serverOnlyKind(k stats.MsgKind) bool {
	switch k {
	case stats.KindRegister, stats.KindRegisterReply,
		stats.KindRun, stats.KindRunReply, stats.KindError:
		return true
	}
	return false
}

// protocolMsgs counts the recorded protocol messages both runtimes share.
func protocolMsgs(rec *stats.Recorder) int64 {
	var n int64
	for _, m := range rec.Trace() {
		if !serverOnlyKind(m.Kind) {
			n++
		}
	}
	return n
}

// calibPredict runs the spec on the simulator with a dedicated directory
// node — the same topology the TCP deployment uses — and collects per-class
// KPIs on the virtual clock.
func calibPredict(spec *workload.Spec) (*calibRun, error) {
	w, err := workload.Compile(spec)
	if err != nil {
		return nil, err
	}
	c, _, err := sim.WrapWorkload(w).Execute(sim.Config{Protocol: core.LOTEC, DedicatedDirectory: true})
	if err != nil {
		return nil, fmt.Errorf("predicted (sim) run: %w", err)
	}
	col := workload.NewKPICollector(w.ClassNames)
	for _, r := range c.Results() {
		root := w.Roots[r.Tag.(int)]
		col.Observe(root.Class, int64(r.Done-r.At), r.Err == nil)
	}
	return &calibRun{
		kpis:  col.Rows(),
		bytes: c.Recorder().Totals().DataBytes,
		msgs:  protocolMsgs(c.Recorder()),
	}, nil
}

// calibFreeAddrs reserves n distinct loopback addresses by binding and
// immediately releasing them (the servers re-bind moments later).
func calibFreeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs, nil
}

// calibMeasure replays the same compiled schedule open-loop against an
// in-process TCP deployment: one GDO and N node servers on loopback, one
// shared traffic recorder, every root submitted at its generated arrival
// time and timed on the wall clock.
func calibMeasure(spec *workload.Spec) (*calibRun, error) {
	w, err := workload.Compile(spec)
	if err != nil {
		return nil, err
	}
	addrs, err := calibFreeAddrs(w.Cfg.Nodes + 1)
	if err != nil {
		return nil, err
	}
	topo := server.Topology{NodeAddrs: addrs[:w.Cfg.Nodes], GDOAddr: addrs[w.Cfg.Nodes]}
	rec := stats.NewRecorder()

	gdo := server.NewGDOServer(topo)
	gdo.SetRecorder(rec)
	if err := gdo.Start(); err != nil {
		return nil, fmt.Errorf("start GDO: %w", err)
	}
	defer gdo.Close()

	body := workload.Body(w.Cfg.WriteBytes)
	nodes := make([]*server.NodeServer, w.Cfg.Nodes)
	for i := range nodes {
		n, err := server.NewNodeServer(server.NodeConfig{
			Topology: topo,
			Self:     ids.NodeID(i + 1),
			Protocol: core.LOTEC,
			PageSize: w.Cfg.PageSize,
			Lenient:  w.Cfg.MispredictProb > 0,
			Rec:      rec,
		})
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i+1, err)
		}
		for _, cls := range w.Classes {
			if err := n.AddClass(cls); err != nil {
				return nil, err
			}
			for _, m := range cls.Methods() {
				if err := n.OnMethod(cls, m.Name, body); err != nil {
					return nil, err
				}
			}
		}
		if err := n.Start(); err != nil {
			return nil, fmt.Errorf("start node %d: %w", i+1, err)
		}
		defer n.Close()
		nodes[i] = n
	}

	// Create every object on every node; the owner's call goes first
	// because it also registers the object with the GDO.
	objs := make([]ids.ObjectID, len(w.Objects))
	for j, o := range w.Objects {
		obj := ids.ObjectID(j + 1)
		objs[j] = obj
		if err := nodes[o.Owner-1].CreateObject(obj, o.Class, o.Owner); err != nil {
			return nil, fmt.Errorf("create object %v: %w", obj, err)
		}
		for i, n := range nodes {
			if ids.NodeID(i+1) == o.Owner {
				continue
			}
			if err := n.CreateObject(obj, o.Class, o.Owner); err != nil {
				return nil, fmt.Errorf("create object %v at node %d: %w", obj, i+1, err)
			}
		}
	}

	// Open-loop replay: sleep to each root's arrival, then fire it on its
	// own goroutine (no admission control — that is the point of open
	// loop). Latency is arrival-to-return, like the simulator's At→Done.
	type outcome struct {
		latNs     int64
		committed bool
	}
	results := make([]outcome, len(w.Roots))
	var wg sync.WaitGroup
	t0 := time.Now()
	for i, root := range w.Roots {
		if d := root.At - time.Since(t0); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, root workload.RootSpec) {
			defer wg.Done()
			start := time.Now()
			_, err := nodes[root.Node-1].Run(objs[root.Call.ObjIndex], root.Call.Method,
				workload.EncodeCall(objs, root.Call))
			results[i] = outcome{latNs: time.Since(start).Nanoseconds(), committed: err == nil}
		}(i, root)
	}
	wg.Wait()
	// Let trailing asynchronous frames (deferred grants from the last
	// releases) reach the recorder before snapshotting the trace.
	time.Sleep(100 * time.Millisecond)

	col := workload.NewKPICollector(w.ClassNames)
	for i, root := range w.Roots {
		col.Observe(root.Class, results[i].latNs, results[i].committed)
	}
	return &calibRun{
		kpis:  col.Rows(),
		bytes: rec.Totals().DataBytes,
		msgs:  protocolMsgs(rec),
	}, nil
}

// relErr is |measured-predicted| normalized by the prediction (or by the
// measurement when the prediction is zero; 0 when both are).
func relErr(pred, meas float64) float64 {
	if pred == meas {
		return 0
	}
	den := math.Abs(pred)
	if den == 0 {
		den = math.Abs(meas)
	}
	return math.Abs(meas-pred) / den
}

// buildCalibration assembles the predicted-vs-measured table and evaluates
// the accuracy gate.
func buildCalibration(prov workload.Provenance, pred, meas *calibRun) *calibration {
	cal := &calibration{Provenance: prov, Predicted: pred.kpis, Measured: meas.kpis, Pass: true}
	byClass := make(map[string]workload.ClassKPI, len(meas.kpis))
	for _, k := range meas.kpis {
		byClass[k.Class] = k
	}
	add := func(kpi, class string, p, m float64, gated bool, limit float64) {
		row := calibRow{
			KPI: kpi, Class: class,
			Predicted: p, Measured: m,
			RelErr: relErr(p, m),
			Gated:  gated, Limit: limit,
		}
		if gated && row.RelErr > limit {
			cal.Pass = false
		}
		cal.Table = append(cal.Table, row)
	}
	for _, p := range pred.kpis {
		m := byClass[p.Class]
		// Commit/abort splits are seed-pure oracles (Call.FailsOut) on
		// both runtimes, so they must agree exactly.
		add("roots", p.Class, float64(p.Roots), float64(m.Roots), true, 0)
		add("commits", p.Class, float64(p.Commits), float64(m.Commits), true, 0)
		add("aborts", p.Class, float64(p.Aborts), float64(m.Aborts), true, 0)
		add("abort_rate", p.Class, p.AbortRate, m.AbortRate, false, 0)
		add("lat_p50_ns", p.Class, float64(p.LatP50Ns), float64(m.LatP50Ns), false, 0)
		add("lat_p95_ns", p.Class, float64(p.LatP95Ns), float64(m.LatP95Ns), false, 0)
		add("lat_p99_ns", p.Class, float64(p.LatP99Ns), float64(m.LatP99Ns), false, 0)
		add("lat_mean_ns", p.Class, p.LatMeanNs, m.LatMeanNs, false, 0)
	}
	add("bytes_moved", "", float64(pred.bytes), float64(meas.bytes), true, calibBytesTol)
	add("msgs", "", float64(pred.msgs), float64(meas.msgs), true, calibMsgsTol)

	// The explicit netmodel latency-error record: per class, then the
	// cross-class aggregate.
	var agg latencyError
	for _, p := range pred.kpis {
		m := byClass[p.Class]
		le := latencyError{
			Class: p.Class,
			P50:   relErr(float64(p.LatP50Ns), float64(m.LatP50Ns)),
			P95:   relErr(float64(p.LatP95Ns), float64(m.LatP95Ns)),
			P99:   relErr(float64(p.LatP99Ns), float64(m.LatP99Ns)),
			Mean:  relErr(p.LatMeanNs, m.LatMeanNs),
		}
		le.Overall = (le.P50 + le.P95 + le.P99 + le.Mean) / 4
		cal.LatencyError = append(cal.LatencyError, le)
		agg.P50 += le.P50
		agg.P95 += le.P95
		agg.P99 += le.P99
		agg.Mean += le.Mean
	}
	if n := float64(len(pred.kpis)); n > 0 {
		agg.P50 /= n
		agg.P95 /= n
		agg.P99 /= n
		agg.Mean /= n
		agg.Overall = (agg.P50 + agg.P95 + agg.P99 + agg.Mean) / 4
		cal.LatencyError = append(cal.LatencyError, agg)
	}
	return cal
}

// printCalibration renders the table for the terminal.
func printCalibration(cal *calibration) {
	fmt.Printf("calibration: %s (spec %.12s, seed %d)\n",
		cal.Provenance.Workload, cal.Provenance.SpecHash, cal.Provenance.Seed)
	fmt.Printf("%-12s %-8s %14s %14s %8s  %s\n", "kpi", "class", "predicted", "measured", "rel_err", "gate")
	for _, r := range cal.Table {
		gate := ""
		switch {
		case r.Gated && r.RelErr > r.Limit:
			gate = fmt.Sprintf("FAIL (> %.2f)", r.Limit)
		case r.Gated:
			gate = fmt.Sprintf("ok (<= %.2f)", r.Limit)
		}
		class := r.Class
		if class == "" {
			class = "-"
		}
		fmt.Printf("%-12s %-8s %14.0f %14.0f %8.3f  %s\n", r.KPI, class, r.Predicted, r.Measured, r.RelErr, gate)
	}
	for _, le := range cal.LatencyError {
		class := le.Class
		if class == "" {
			class = "(all)"
		}
		fmt.Printf("netmodel latency error %-8s p50=%.3f p95=%.3f p99=%.3f mean=%.3f overall=%.3f\n",
			class, le.P50, le.P95, le.P99, le.Mean, le.Overall)
	}
}

// runCalibrate is the -calibrate entry point: predict, measure, table,
// merge into jsonPath, gate.
func runCalibrate(specArg, jsonPath string) error {
	spec, err := workload.LoadSpec(specArg)
	if err != nil {
		return err
	}
	prov := workload.Provenance{Workload: spec.Name, SpecHash: spec.Hash(), Seed: spec.Seed}

	pred, err := calibPredict(spec)
	if err != nil {
		return err
	}
	meas, err := calibMeasure(spec)
	if err != nil {
		return err
	}
	cal := buildCalibration(prov, pred, meas)
	printCalibration(cal)

	doc, err := readBenchDoc(jsonPath)
	if err != nil {
		return err
	}
	doc.Calibration = cal
	if err := writeBenchDoc(jsonPath, doc); err != nil {
		return err
	}
	fmt.Printf("wrote calibration section to %s\n", jsonPath)

	if !cal.Pass {
		return fmt.Errorf("calibration gate failed: model and TCP measurement disagree beyond tolerance")
	}
	return nil
}
