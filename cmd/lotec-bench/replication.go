package main

// Control-plane availability gate for -smoke: run the replicated-directory
// availability experiment (primary kill + reshard-under-load, both on the
// virtual clock, so exactly reproducible) and fail CI if a replicated
// topology loses work, never fails over, or ships an empty handoff. The
// measured rows are recorded as "replication/availability" entries in
// BENCH_results.json alongside the figure benchmarks.

import (
	"fmt"

	"lotec/internal/sim"
)

// availabilitySeed pins the experiment's workload; the run is virtual-clock
// deterministic, so the recorded rows are stable across machines.
const availabilitySeed = 11

// smokeAvailability gates and records the availability sweep. path is the
// BENCH_results.json to update ("" falls back to the default name).
func smokeAvailability(path string) error {
	if path == "" {
		path = "BENCH_results.json"
	}
	rows, err := sim.RunAvailability(availabilitySeed, []int{2, 3})
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.FailedRoots != 0 {
			return fmt.Errorf("availability: replicas=%d lost %d/%d roots to a primary kill — failover must recover all of them",
				r.Replicas, r.FailedRoots, r.Roots)
		}
		if r.Failovers == 0 || r.FailoverP99 <= 0 {
			return fmt.Errorf("availability: replicas=%d observed no failover under a primary kill (promotions=%d)",
				r.Replicas, r.Promotions)
		}
		if r.Promotions == 0 {
			return fmt.Errorf("availability: replicas=%d recorded no backup promotion", r.Replicas)
		}
		if r.HandoffBytes == 0 || r.HandoffLatency <= 0 {
			return fmt.Errorf("availability: replicas=%d reshard handoff shipped no state (bytes=%d)",
				r.Replicas, r.HandoffBytes)
		}
		fmt.Printf("smoke ok: replicas=%d failover p50 %v p99 %v, %d promotion(s), %.2f aborts/failover, handoff %d B in %v\n",
			r.Replicas, r.FailoverP50, r.FailoverP99, r.Promotions, r.AbortsPerFailover,
			r.HandoffBytes, r.HandoffLatency)
	}

	doc, err := readBenchDoc(path)
	if err != nil {
		return err
	}
	kept := doc.Results[:0]
	for _, r := range doc.Results {
		if r.Op != "replication/availability" {
			kept = append(kept, r)
		}
	}
	doc.Results = kept
	for _, r := range rows {
		doc.Results = append(doc.Results, benchResult{
			Op:                "replication/availability",
			Replicas:          r.Replicas,
			Ops:               r.Roots,
			FailoverP50Ns:     r.FailoverP50.Nanoseconds(),
			FailoverP99Ns:     r.FailoverP99.Nanoseconds(),
			Promotions:        r.Promotions,
			AbortsPerFailover: r.AbortsPerFailover,
			HandoffBytes:      r.HandoffBytes,
			HandoffNs:         r.HandoffLatency.Nanoseconds(),
		})
	}
	return writeBenchDoc(path, doc)
}
