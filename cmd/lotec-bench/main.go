// lotec-bench explores the network-parameter space of §5: it runs one
// figure's workload per protocol and prices the hottest object's message
// trace under every bandwidth × software-cost combination — the full grid
// behind Figures 6–8, for finding where LOTEC's smaller-but-more-numerous
// messages win or lose.
//
// With -json, it additionally benchmarks the directory itself — concurrent
// acquire/release throughput at 1, 2, 4 and 8 lock shards — and writes
// machine-readable results to BENCH_results.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lotec/internal/core"
	"lotec/internal/directory"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/o2pl"
	"lotec/internal/sim"
)

// benchResult is one line of BENCH_results.json.
type benchResult struct {
	// Op names the benchmark ("workload/figure3", "directory/acquire-release/shards=4").
	Op string `json:"op"`
	// Protocol is the consistency protocol, where one applies.
	Protocol string `json:"protocol,omitempty"`
	// Shards is the directory partition count, for directory benchmarks.
	Shards int `json:"shards,omitempty"`
	// Ops is the number of operations timed.
	Ops int `json:"ops"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesMoved is the consistency data traffic of the run (simulated
	// runs only; the directory benchmark is in-process).
	BytesMoved int64 `json:"bytes_moved"`
}

func main() {
	figure := flag.String("figure", "3", "workload figure to sweep (2..5)")
	jsonOut := flag.String("json", "", "also benchmark directory sharding and write results to this file (e.g. BENCH_results.json)")
	flag.Parse()

	spec, err := sim.FigureByID(*figure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotec-bench:", err)
		os.Exit(1)
	}

	if *jsonOut != "" {
		if err := writeJSON(spec, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "lotec-bench:", err)
			os.Exit(1)
		}
		return
	}

	res, err := sim.RunFigure(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotec-bench:", err)
		os.Exit(1)
	}
	obj := res.HottestObject()
	fmt.Printf("Workload of figure %s; pricing object %v (hottest) under all network parameters.\n\n", spec.ID, obj)
	for _, bw := range netmodel.Networks {
		fmt.Print(res.TimeTable(bw))
		fmt.Println()
	}
	fmt.Println(res.CountersTable())
}

// writeJSON times the figure workload per protocol and the sharded
// directory's acquire/release path, then writes every result to path.
func writeJSON(spec sim.FigureSpec, path string) error {
	var results []benchResult

	for _, p := range []core.Protocol{core.COTEC, core.OTEC, core.LOTEC} {
		// Fresh workload per run: clusters mutate installed class state.
		w, err := sim.GenerateWorkload(spec.Workload)
		if err != nil {
			return err
		}
		start := time.Now()
		c, _, err := w.Execute(sim.Config{Protocol: p})
		if err != nil {
			return fmt.Errorf("%s workload: %w", p.Name(), err)
		}
		elapsed := time.Since(start)
		n := len(c.Results())
		results = append(results, benchResult{
			Op:         "workload/figure" + spec.ID,
			Protocol:   p.Name(),
			Ops:        n,
			NsPerOp:    float64(elapsed.Nanoseconds()) / float64(n),
			BytesMoved: c.Recorder().Totals().DataBytes,
		})
		fmt.Printf("workload/figure%s  %-6s %8d ops  %12.0f ns/op  %10d bytes\n",
			spec.ID, p.Name(), n, results[len(results)-1].NsPerOp, results[len(results)-1].BytesMoved)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		nsPerOp, ops, err := benchDirectory(shards)
		if err != nil {
			return fmt.Errorf("directory bench (%d shards): %w", shards, err)
		}
		results = append(results, benchResult{
			Op:      fmt.Sprintf("directory/acquire-release/shards=%d", shards),
			Shards:  shards,
			Ops:     ops,
			NsPerOp: nsPerOp,
		})
		fmt.Printf("directory/acquire-release  %d shard(s) %8d ops  %12.0f ns/op\n", shards, ops, nsPerOp)
	}

	buf, err := json.MarshalIndent(struct {
		Figure  string        `json:"figure"`
		Results []benchResult `json:"results"`
	}{Figure: spec.ID, Results: results}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(results))
	return nil
}

// benchDirectory times write-acquire + release round trips against a
// sharded directory under concurrent load: 8 sites hammer 512 registered
// objects with single-object transactions over disjoint object ranges (so
// every acquire grants immediately and the lock-service path itself is what
// is measured). Each release scans its partition's entries, so throughput
// scales with the partition count even on one core.
func benchDirectory(shards int) (nsPerOp float64, ops int, err error) {
	const (
		objects = 512
		workers = 8
		iters   = 2000
	)
	s := directory.NewSharded(shards, workers)
	for o := ids.ObjectID(1); o <= objects; o++ {
		if err := s.Register(o, 1, 1); err != nil {
			return 0, 0, err
		}
	}
	var (
		nextFam  atomic.Uint64
		wg       sync.WaitGroup
		errOnce  sync.Once
		benchErr error
	)
	span := objects / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := ids.NodeID(w + 1)
			for i := 0; i < iters; i++ {
				obj := ids.ObjectID(w*span + i%span + 1)
				fam := ids.FamilyID(nextFam.Add(1))
				ref := ids.TxRef{Tx: ids.TxID(fam), Node: site}
				if _, _, err := s.Acquire(obj, ref, fam, uint64(fam), site, o2pl.Write); err != nil {
					errOnce.Do(func() { benchErr = err })
					return
				}
				if _, _, err := s.Release(fam, site, false, []gdo.ObjectRelease{{Obj: obj}}); err != nil {
					errOnce.Do(func() { benchErr = err })
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if benchErr != nil {
		return 0, 0, benchErr
	}
	ops = workers * iters
	return float64(elapsed.Nanoseconds()) / float64(ops), ops, nil
}
