// lotec-bench explores the network-parameter space of §5: it runs one
// figure's workload per protocol and prices the hottest object's message
// trace under every bandwidth × software-cost combination — the full grid
// behind Figures 6–8, for finding where LOTEC's smaller-but-more-numerous
// messages win or lose.
//
// With -json, it additionally benchmarks the directory itself — concurrent
// acquire/release throughput at 1, 2, 4 and 8 lock shards — and writes
// machine-readable results to BENCH_results.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lotec/internal/core"
	"lotec/internal/directory"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/o2pl"
	"lotec/internal/sim"
	"lotec/internal/stats"
	"lotec/internal/workload"
)

// benchResult is one line of BENCH_results.json.
type benchResult struct {
	// Op names the benchmark ("workload/figure3", "directory/acquire-release/shards=4").
	Op string `json:"op"`
	// Protocol is the consistency protocol, where one applies.
	Protocol string `json:"protocol,omitempty"`
	// Shards is the directory partition count, for directory benchmarks.
	Shards int `json:"shards,omitempty"`
	// FetchConcurrency is the transfer fan-out bound, for sweep entries.
	FetchConcurrency int `json:"fetch_concurrency,omitempty"`
	// Ops is the number of operations timed.
	Ops int `json:"ops"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// WriteBytes is the write schema of a delta-sweep entry: each declared
	// write touches only this many bytes of its attribute (absent =
	// historical whole-attribute writes).
	WriteBytes int `json:"write_bytes,omitempty"`
	// BytesMoved is the consistency data traffic of the run (simulated
	// runs only; the directory benchmark is in-process).
	BytesMoved int64 `json:"bytes_moved"`
	// Delta-transfer split of BytesMoved (delta sweep entries only):
	// bytes that moved as dirty-range deltas, the full-page bytes those
	// deltas replaced minus their encoded size, and how many pages fell
	// back to a full payload.
	DeltaBytes      int64 `json:"delta_bytes,omitempty"`
	DeltaSavedBytes int64 `json:"delta_saved_bytes,omitempty"`
	DeltaFallbacks  int64 `json:"delta_fallbacks,omitempty"`
	// AllocsPerOp is heap allocations per committed root (delta sweep
	// entries only; the delta path must stay allocation-lean — payload
	// buffers are pooled).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Transfer-pipeline breakdown (simulated runs only): total transfers
	// and the summed per-stage wall clock on the cluster's virtual clock.
	// Gather is the only stage whose time responds to FetchConcurrency.
	Transfers    int   `json:"transfers,omitempty"`
	XferPlanNs   int64 `json:"xfer_plan_ns,omitempty"`
	XferGatherNs int64 `json:"xfer_gather_ns,omitempty"`
	XferApplyNs  int64 `json:"xfer_apply_ns,omitempty"`
	// Control-plane availability (replication/availability rows only):
	// failover latency percentiles under a primary kill, backup promotions,
	// aborts attributable to each failover, and the state shipped by an
	// online shard handoff. All measured on the virtual clock.
	Replicas          int     `json:"replicas,omitempty"`
	FailoverP50Ns     int64   `json:"failover_p50_ns,omitempty"`
	FailoverP99Ns     int64   `json:"failover_p99_ns,omitempty"`
	Promotions        int64   `json:"promotions,omitempty"`
	AbortsPerFailover float64 `json:"aborts_per_failover,omitempty"`
	HandoffBytes      uint64  `json:"handoff_bytes,omitempty"`
	HandoffNs         int64   `json:"handoff_ns,omitempty"`
}

func main() {
	figure := flag.String("figure", "3", "workload figure to sweep (2..5)")
	jsonOut := flag.String("json", "", "also benchmark directory sharding and write results to this file (e.g. BENCH_results.json)")
	smoke := flag.Bool("smoke", false, "fast CI check: assert the byte/message trace is FetchConcurrency-invariant, the gather wall-clock improves, and bytes_moved/ns_per_op/allocs_per_op have not regressed vs -baseline")
	baseline := flag.String("baseline", "BENCH_results.json", "committed results the smoke check compares bytes_moved against (\"\" disables)")
	writeBytes := flag.Int("write-bytes", 0, "cap each declared write at this many bytes (0 = whole attribute) — prices the figure grid under a field-sized write schema where sub-page deltas flow")
	calibrate := flag.Bool("calibrate", false, "run the -workload spec on the simulator and on an in-process TCP cluster, write the predicted-vs-measured table into the -json file (default BENCH_results.json), and gate on model accuracy")
	workloadArg := flag.String("workload", "zipf-hot", "workload spec for -calibrate: a preset name or a JSON spec file")
	flag.Parse()

	if *calibrate {
		path := *jsonOut
		if path == "" {
			path = "BENCH_results.json"
		}
		if err := runCalibrate(*workloadArg, path); err != nil {
			fmt.Fprintln(os.Stderr, "lotec-bench: calibrate:", err)
			os.Exit(1)
		}
		return
	}

	spec, err := sim.FigureByID(*figure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotec-bench:", err)
		os.Exit(1)
	}
	spec.Workload.WriteBytes = *writeBytes

	if *smoke {
		if err := runSmoke(spec); err != nil {
			fmt.Fprintln(os.Stderr, "lotec-bench: smoke:", err)
			os.Exit(1)
		}
		if *baseline != "" {
			if err := checkBaseline(spec, *baseline); err != nil {
				fmt.Fprintln(os.Stderr, "lotec-bench: smoke:", err)
				os.Exit(1)
			}
			if err := checkPerfLedger(*baseline); err != nil {
				fmt.Fprintln(os.Stderr, "lotec-bench: smoke:", err)
				os.Exit(1)
			}
		}
		if err := smokeAvailability(*baseline); err != nil {
			fmt.Fprintln(os.Stderr, "lotec-bench: smoke:", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		if err := writeJSON(spec, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "lotec-bench:", err)
			os.Exit(1)
		}
		return
	}

	res, err := sim.RunFigure(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotec-bench:", err)
		os.Exit(1)
	}
	obj := res.HottestObject()
	fmt.Printf("Workload of figure %s; pricing object %v (hottest) under all network parameters.\n\n", spec.ID, obj)
	for _, bw := range netmodel.Networks {
		fmt.Print(res.TimeTable(bw))
		fmt.Println()
	}
	fmt.Println(res.CountersTable())
}

// benchDoc is the whole of BENCH_results.json. The figure benchmarks
// (writeJSON) and the calibrate loop (runCalibrate) each own one section
// and preserve the other's on rewrite, so CI can refresh them
// independently. Workload/SpecHash/Seed stamp the provenance of the figure
// rows: which spec generated the traffic, under which seed.
type benchDoc struct {
	Figure      string        `json:"figure,omitempty"`
	Workload    string        `json:"workload,omitempty"`
	SpecHash    string        `json:"spec_hash,omitempty"`
	Seed        int64         `json:"seed,omitempty"`
	Results     []benchResult `json:"results,omitempty"`
	Calibration *calibration  `json:"calibration,omitempty"`
}

// readBenchDoc loads path, or returns an empty document when it does not
// exist yet.
func readBenchDoc(path string) (*benchDoc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &benchDoc{}, nil
		}
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func writeBenchDoc(path string, doc *benchDoc) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// figureProvenance identifies a figure's traffic the same way spec-compiled
// workloads are identified: the legacy config wrapped as a spec, hashed.
func figureProvenance(spec sim.FigureSpec) (name, hash string, seed int64) {
	cfg := spec.Workload
	s := workload.Spec{Name: "figure" + spec.ID, Seed: cfg.Seed, Legacy: &cfg}
	return s.Name, s.Hash(), cfg.Seed
}

// writeJSON times the figure workload per protocol and the sharded
// directory's acquire/release path, then writes every result to path.
func writeJSON(spec sim.FigureSpec, path string) error {
	var results []benchResult

	for _, p := range []core.Protocol{core.COTEC, core.OTEC, core.LOTEC} {
		// Fresh workload per run: clusters mutate installed class state.
		w, err := sim.GenerateWorkload(spec.Workload)
		if err != nil {
			return err
		}
		start := time.Now()
		c, _, err := w.Execute(sim.Config{Protocol: p})
		if err != nil {
			return fmt.Errorf("%s workload: %w", p.Name(), err)
		}
		elapsed := time.Since(start)
		n := len(c.Results())
		stages := c.Recorder().TransferStages(0)
		results = append(results, benchResult{
			Op:           "workload/figure" + spec.ID,
			Protocol:     p.Name(),
			Ops:          n,
			NsPerOp:      float64(elapsed.Nanoseconds()) / float64(n),
			BytesMoved:   c.Recorder().Totals().DataBytes,
			Transfers:    stages.Transfers,
			XferPlanNs:   stages.Plan.Nanoseconds(),
			XferGatherNs: stages.Gather.Nanoseconds(),
			XferApplyNs:  stages.Apply.Nanoseconds(),
		})
		fmt.Printf("workload/figure%s  %-6s %8d ops  %12.0f ns/op  %10d bytes  gather %v\n",
			spec.ID, p.Name(), n, results[len(results)-1].NsPerOp, results[len(results)-1].BytesMoved, stages.Gather)
	}

	sweep, err := sweepFetchConcurrency(spec)
	if err != nil {
		return err
	}
	results = append(results, sweep...)

	deltas, err := sweepDelta(spec)
	if err != nil {
		return err
	}
	results = append(results, deltas...)

	for _, shards := range []int{1, 2, 4, 8} {
		nsPerOp, ops, err := benchDirectory(shards)
		if err != nil {
			return fmt.Errorf("directory bench (%d shards): %w", shards, err)
		}
		results = append(results, benchResult{
			Op:      fmt.Sprintf("directory/acquire-release/shards=%d", shards),
			Shards:  shards,
			Ops:     ops,
			NsPerOp: nsPerOp,
		})
		fmt.Printf("directory/acquire-release  %d shard(s) %8d ops  %12.0f ns/op\n", shards, ops, nsPerOp)
	}

	perf, err := perfLedger()
	if err != nil {
		return err
	}
	results = append(results, perf...)

	doc, err := readBenchDoc(path)
	if err != nil {
		return err
	}
	doc.Figure = spec.ID
	doc.Workload, doc.SpecHash, doc.Seed = figureProvenance(spec)
	doc.Results = results
	if err := writeBenchDoc(path, doc); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(results))
	return nil
}

// sweepFetchConcurrency runs the figure's workload under LOTEC at transfer
// fan-out bounds 1, 4 and 16. The byte/message trace must be identical at
// every setting (that invariant is enforced here, not just measured); only
// the modeled gather wall-clock may move, and it is what the sweep reports.
func sweepFetchConcurrency(spec sim.FigureSpec) ([]benchResult, error) {
	var results []benchResult
	var baseBytes, baseMsgs int64
	for _, k := range []int{1, 4, 16} {
		w, err := sim.GenerateWorkload(spec.Workload)
		if err != nil {
			return nil, err
		}
		c, _, err := w.Execute(sim.Config{Protocol: core.LOTEC, FetchConcurrency: k})
		if err != nil {
			return nil, fmt.Errorf("fetch-concurrency sweep (k=%d): %w", k, err)
		}
		tot := c.Recorder().Totals()
		if k == 1 {
			baseBytes, baseMsgs = tot.TotalBytes(), int64(tot.Msgs)
		} else if tot.TotalBytes() != baseBytes || int64(tot.Msgs) != baseMsgs {
			return nil, fmt.Errorf(
				"fetch-concurrency sweep: trace not invariant at k=%d: %d bytes/%d msgs, serial %d/%d",
				k, tot.TotalBytes(), tot.Msgs, baseBytes, baseMsgs)
		}
		stages := c.Recorder().TransferStages(0)
		results = append(results, benchResult{
			Op:               fmt.Sprintf("workload/figure%s/fetch-concurrency", spec.ID),
			Protocol:         core.LOTEC.Name(),
			FetchConcurrency: k,
			Ops:              stages.Transfers,
			NsPerOp:          float64(stages.Gather.Nanoseconds()) / float64(stages.Transfers),
			BytesMoved:       tot.DataBytes,
			Transfers:        stages.Transfers,
			XferPlanNs:       stages.Plan.Nanoseconds(),
			XferGatherNs:     stages.Gather.Nanoseconds(),
			XferApplyNs:      stages.Apply.Nanoseconds(),
		})
		fmt.Printf("workload/figure%s/fetch-concurrency  k=%-2d %6d transfers  gather %v\n",
			spec.ID, k, stages.Transfers, stages.Gather)
	}
	return results, nil
}

// sweepDelta runs the figure's workload under LOTEC with field-sized write
// schemas (8 B, 64 B) and the historical whole-attribute schema, deltas on,
// and reports what each moved: total data bytes, the delta/full split, and
// heap allocations per committed root (the delta path pools its payload
// buffers, so allocations must not grow with write count).
func sweepDelta(spec sim.FigureSpec) ([]benchResult, error) {
	var results []benchResult
	for _, wb := range []int{8, 64, 0} {
		cfg := spec.Workload
		cfg.WriteBytes = wb
		w, err := sim.GenerateWorkload(cfg)
		if err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		c, _, err := w.Execute(sim.Config{Protocol: core.LOTEC})
		if err != nil {
			return nil, fmt.Errorf("delta sweep (wb=%d): %w", wb, err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		n := len(c.Results())
		cnt := c.Recorder().Counters()
		results = append(results, benchResult{
			Op:              fmt.Sprintf("workload/figure%s/delta", spec.ID),
			Protocol:        core.LOTEC.Name(),
			WriteBytes:      wb,
			Ops:             n,
			NsPerOp:         float64(elapsed.Nanoseconds()) / float64(n),
			BytesMoved:      c.Recorder().Totals().DataBytes,
			DeltaBytes:      cnt.DeltaBytes,
			DeltaSavedBytes: cnt.DeltaSavedBytes,
			DeltaFallbacks:  cnt.DeltaFallbacks,
			AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / float64(n),
		})
		label := "page"
		if wb > 0 {
			label = fmt.Sprintf("%dB", wb)
		}
		r := results[len(results)-1]
		fmt.Printf("workload/figure%s/delta  writes=%-5s %10d bytes  delta %8d B  saved %8d B  %6.0f allocs/op\n",
			spec.ID, label, r.BytesMoved, r.DeltaBytes, r.DeltaSavedBytes, r.AllocsPerOp)
	}
	return results, nil
}

// Slack factors for the wall-clock and allocation regression gates.
// bytes_moved is exactly reproducible on the virtual clock and gets no
// slack; ns_per_op is real time on a shared CI machine and gets a wide
// band that still catches order-of-magnitude regressions; allocs_per_op is
// nearly deterministic (runtime background allocation is the only noise)
// and gets a tight one.
const (
	smokeNsSlack     = 3.0
	smokeAllocsSlack = 1.25
)

// checkBaseline is the regression gate against the committed
// BENCH_results.json: it reruns the figure's LOTEC workload
// (whole-attribute and small-write schemas — both exactly reproducible on
// the virtual clock) and fails if any moves more data than the committed
// run recorded, runs slower than smokeNsSlack× its committed ns_per_op,
// allocates more than smokeAllocsSlack× its committed allocs_per_op, or if
// the 8-byte-write schema stops clearing a 25% saving over the committed
// whole-attribute run.
func checkBaseline(spec sim.FigureSpec, path string) error {
	doc, err := readBenchDoc(path)
	if err != nil {
		return err
	}
	if len(doc.Results) == 0 {
		fmt.Printf("smoke: no results in %s; skipping regression gates\n", path)
		return nil
	}
	find := func(op string, wb int) *benchResult {
		for i := range doc.Results {
			r := &doc.Results[i]
			if r.Op == op && r.Protocol == core.LOTEC.Name() && r.WriteBytes == wb {
				return r
			}
		}
		return nil
	}
	run := func(wb int) (measured benchResult, err error) {
		cfg := spec.Workload
		cfg.WriteBytes = wb
		w, err := sim.GenerateWorkload(cfg)
		if err != nil {
			return benchResult{}, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		c, _, err := w.Execute(sim.Config{Protocol: core.LOTEC})
		if err != nil {
			return benchResult{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		n := len(c.Results())
		return benchResult{
			Ops:         n,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
			BytesMoved:  c.Recorder().Totals().DataBytes,
		}, nil
	}
	gate := func(label string, committed *benchResult, got benchResult) error {
		if got.BytesMoved > committed.BytesMoved {
			return fmt.Errorf("bytes_moved regressed: %s moves %d B, committed %d B",
				label, got.BytesMoved, committed.BytesMoved)
		}
		if committed.NsPerOp > 0 && got.NsPerOp > committed.NsPerOp*smokeNsSlack {
			return fmt.Errorf("ns_per_op regressed: %s runs at %.0f ns/op, committed %.0f (limit %.0fx)",
				label, got.NsPerOp, committed.NsPerOp, smokeNsSlack)
		}
		if committed.AllocsPerOp > 0 && got.AllocsPerOp > committed.AllocsPerOp*smokeAllocsSlack {
			return fmt.Errorf("allocs_per_op regressed: %s allocates %.0f/op, committed %.0f (limit %.2fx)",
				label, got.AllocsPerOp, committed.AllocsPerOp, smokeAllocsSlack)
		}
		return nil
	}

	full := find("workload/figure"+spec.ID, 0)
	if full == nil {
		fmt.Printf("smoke: %s has no figure %s LOTEC row; skipping regression gate\n", path, spec.ID)
		return nil
	}
	got, err := run(0)
	if err != nil {
		return err
	}
	if err := gate("figure "+spec.ID+" LOTEC", full, got); err != nil {
		return err
	}
	fmt.Printf("smoke ok: figure %s LOTEC bytes_moved %d B (committed %d B), %.0f ns/op (committed %.0f)\n",
		spec.ID, got.BytesMoved, full.BytesMoved, got.NsPerOp, full.NsPerOp)

	for _, wb := range []int{8, 64} {
		cur, err := run(wb)
		if err != nil {
			return err
		}
		if row := find("workload/figure"+spec.ID+"/delta", wb); row != nil {
			if err := gate(fmt.Sprintf("%d B-write schema", wb), row, cur); err != nil {
				return err
			}
		}
		if wb == 8 {
			if limit := full.BytesMoved * 3 / 4; cur.BytesMoved > limit {
				return fmt.Errorf("delta saving eroded: 8 B-write schema moves %d B, must stay ≤ 75%% of the committed full-write run (%d B)",
					cur.BytesMoved, limit)
			}
		}
		fmt.Printf("smoke ok: figure %s LOTEC %d B-write bytes_moved %d B, %.0f allocs/op\n",
			spec.ID, wb, cur.BytesMoved, cur.AllocsPerOp)
	}
	return nil
}

// runSmoke is the CI gate on the data plane's core invariant: identical
// byte/message traces at FetchConcurrency 1 and 4, with the modeled gather
// wall-clock no worse — and strictly better when any transfer fanned out.
func runSmoke(spec sim.FigureSpec) error {
	type snap struct {
		trace  []stats.MsgRecord
		totals stats.ObjStats
		gather time.Duration
		multi  int // transfers with more than one per-site batch
	}
	run := func(k int) (snap, error) {
		w, err := sim.GenerateWorkload(spec.Workload)
		if err != nil {
			return snap{}, err
		}
		c, _, err := w.Execute(sim.Config{Protocol: core.LOTEC, FetchConcurrency: k})
		if err != nil {
			return snap{}, err
		}
		rec := c.Recorder()
		s := snap{trace: rec.Trace(), totals: rec.Totals(), gather: rec.TransferStages(0).Gather}
		for _, t := range rec.Transfers() {
			if t.Batches > 1 {
				s.multi++
			}
		}
		return s, nil
	}
	serial, err := run(1)
	if err != nil {
		return err
	}
	overlapped, err := run(4)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(serial.totals, overlapped.totals) {
		return fmt.Errorf("totals diverge: %+v vs %+v", serial.totals, overlapped.totals)
	}
	if len(serial.trace) != len(overlapped.trace) {
		return fmt.Errorf("trace lengths diverge: %d vs %d", len(serial.trace), len(overlapped.trace))
	}
	for i := range serial.trace {
		if !reflect.DeepEqual(serial.trace[i], overlapped.trace[i]) {
			return fmt.Errorf("trace record %d diverges: %+v vs %+v", i, serial.trace[i], overlapped.trace[i])
		}
	}
	if overlapped.gather > serial.gather {
		return fmt.Errorf("gather wall-clock regressed: %v at k=4 vs %v serial", overlapped.gather, serial.gather)
	}
	if serial.multi > 0 && overlapped.gather >= serial.gather {
		return fmt.Errorf("%d transfers fanned out but gather did not improve: %v vs %v",
			serial.multi, overlapped.gather, serial.gather)
	}
	fmt.Printf("smoke ok: figure %s, %d msgs invariant, gather %v (k=1) → %v (k=4), %d fanned-out transfers\n",
		spec.ID, len(serial.trace), serial.gather, overlapped.gather, serial.multi)
	return nil
}

// benchDirectory times write-acquire + release round trips against a
// sharded directory under concurrent load: 8 sites hammer 512 registered
// objects with single-object transactions over disjoint object ranges (so
// every acquire grants immediately and the lock-service path itself is what
// is measured). Each release scans its partition's entries, so throughput
// scales with the partition count even on one core.
func benchDirectory(shards int) (nsPerOp float64, ops int, err error) {
	const (
		objects = 512
		workers = 8
		iters   = 2000
	)
	s := directory.NewSharded(shards, workers)
	for o := ids.ObjectID(1); o <= objects; o++ {
		if err := s.Register(o, 1, 1); err != nil {
			return 0, 0, err
		}
	}
	var (
		nextFam  atomic.Uint64
		wg       sync.WaitGroup
		errOnce  sync.Once
		benchErr error
	)
	span := objects / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := ids.NodeID(w + 1)
			for i := 0; i < iters; i++ {
				obj := ids.ObjectID(w*span + i%span + 1)
				fam := ids.FamilyID(nextFam.Add(1))
				ref := ids.TxRef{Tx: ids.TxID(fam), Node: site}
				if _, _, err := s.Acquire(obj, ref, fam, uint64(fam), site, o2pl.Write); err != nil {
					errOnce.Do(func() { benchErr = err })
					return
				}
				if _, _, err := s.Release(fam, site, false, []gdo.ObjectRelease{{Obj: obj}}); err != nil {
					errOnce.Do(func() { benchErr = err })
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if benchErr != nil {
		return 0, 0, benchErr
	}
	ops = workers * iters
	return float64(elapsed.Nanoseconds()) / float64(ops), ops, nil
}
