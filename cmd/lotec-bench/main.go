// lotec-bench explores the network-parameter space of §5: it runs one
// figure's workload per protocol and prices the hottest object's message
// trace under every bandwidth × software-cost combination — the full grid
// behind Figures 6–8, for finding where LOTEC's smaller-but-more-numerous
// messages win or lose.
package main

import (
	"flag"
	"fmt"
	"os"

	"lotec/internal/netmodel"
	"lotec/internal/sim"
)

func main() {
	figure := flag.String("figure", "3", "workload figure to sweep (2..5)")
	flag.Parse()

	spec, err := sim.FigureByID(*figure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotec-bench:", err)
		os.Exit(1)
	}
	res, err := sim.RunFigure(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotec-bench:", err)
		os.Exit(1)
	}
	obj := res.HottestObject()
	fmt.Printf("Workload of figure %s; pricing object %v (hottest) under all network parameters.\n\n", spec.ID, obj)
	for _, bw := range netmodel.Networks {
		fmt.Print(res.TimeTable(bw))
		fmt.Println()
	}
	fmt.Println(res.CountersTable())
}
