// lotec-gdo runs the global directory of objects (GDO) service of a TCP
// deployment. Start it before the data nodes:
//
//	lotec-gdo -addr :7100 -nodes host1:7101,host2:7102
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lotec"
)

func main() {
	addr := flag.String("addr", ":7100", "listen address of the directory")
	nodes := flag.String("nodes", "", "comma-separated data node addresses, in node-ID order")
	shards := flag.Int("shards", 1, "directory partitions; every node must be started with the same value")
	faultPlan := flag.String("fault-plan", "", `inject deterministic network faults: a preset (drop, delay, dup, reorder, chaos) or clause list like "drop(p=0.1);delay(p=0.2,d=1ms)"`)
	faultSeed := flag.Uint64("fault-seed", 1, "seed driving the fault plan's random draws")
	flag.Parse()

	nodeAddrs := strings.Split(*nodes, ",")
	if *nodes == "" || len(nodeAddrs) == 0 {
		fmt.Fprintln(os.Stderr, "lotec-gdo: -nodes is required")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "lotec-gdo: -shards must be at least 1")
		os.Exit(2)
	}
	topo := lotec.Topology{NodeAddrs: nodeAddrs, GDOAddr: *addr, DirectoryShards: *shards}
	g, err := lotec.StartGDOWith(lotec.GDOOptions{Topology: topo, FaultPlan: *faultPlan, FaultSeed: *faultSeed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotec-gdo:", err)
		os.Exit(1)
	}
	fmt.Printf("GDO serving %d-node deployment at %s (%d shard(s))\n", len(nodeAddrs), g.Addr(), *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	_ = g.Close()
}
