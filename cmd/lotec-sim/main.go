// lotec-sim regenerates the paper's evaluation: every figure of §5, the
// headline protocol comparison, and the ablations DESIGN.md calls out.
//
// Usage:
//
//	lotec-sim -figure all        # Figures 2–8 plus the RC extension
//	lotec-sim -figure 3          # one figure
//	lotec-sim -headline          # §5 aggregate byte ratios
//	lotec-sim -ablation all      # prediction/granularity/demand/disorder
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lotec/internal/fault"
	"lotec/internal/sim"
)

func main() {
	figure := flag.String("figure", "", "figure to regenerate: 2..8, rc, or all")
	headline := flag.Bool("headline", false, "print the §5 headline byte ratios")
	ablation := flag.String("ablation", "", "ablation to run: prediction, granularity, demand, disorder, faults, delta, or all")
	fetchConc := flag.Int("fetch-concurrency", 0, "in-flight per-site page-transfer calls (0 = default 4); trace-invariant")
	delta := flag.String("delta", "on", "sub-page delta transfers: on (default) or off (pre-delta wire traffic, byte-identical)")
	faultPlan := flag.String("fault-plan", "", `network fault plan for -figure runs: a preset (drop, delay, dup, reorder, partition, crash, chaos) or clause list like "drop(p=0.1);delay(p=0.2,d=1ms)"`)
	faultSeed := flag.Uint64("fault-seed", 1, "seed driving the fault plan's random draws")
	flag.Parse()

	if *figure == "" && !*headline && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *delta != "on" && *delta != "off" {
		fmt.Fprintln(os.Stderr, "lotec-sim: -delta must be on or off")
		os.Exit(2)
	}
	if err := run(*figure, *headline, *ablation, *fetchConc, *delta == "off", *faultPlan, *faultSeed); err != nil {
		fmt.Fprintln(os.Stderr, "lotec-sim:", err)
		os.Exit(1)
	}
}

func run(figure string, headline bool, ablation string, fetchConc int, deltaOff bool, faultPlan string, faultSeed uint64) error {
	var faults *fault.Plan
	if faultPlan != "" {
		plan, err := fault.Parse(faultPlan, faultSeed)
		if err != nil {
			return fmt.Errorf("fault plan: %w", err)
		}
		faults = plan
	}
	if figure != "" {
		specs := sim.FigureSpecs()
		if figure != "all" {
			spec, err := sim.FigureByID(figure)
			if err != nil {
				return err
			}
			specs = []sim.FigureSpec{spec}
		}
		for _, spec := range specs {
			t0 := time.Now()
			res, err := sim.RunFigureConfig(spec, sim.Config{FetchConcurrency: fetchConc, DeltaOff: deltaOff, Faults: faults})
			if err != nil {
				return err
			}
			fmt.Printf("(regenerated in %v)\n%s\n", time.Since(t0).Round(time.Millisecond), res.Render())
		}
	}
	if headline {
		out, err := sim.Headline()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if ablation != "" {
		all := map[string]func() (string, error){
			"prediction":  sim.PredictionWidthAblation,
			"granularity": sim.GranularityAblation,
			"demand":      sim.DemandFetchAblation,
			"disorder":    sim.DisorderAblation,
			"faults":      sim.FaultSweepAblation,
			"delta":       sim.DeltaAblation,
		}
		names := []string{"prediction", "granularity", "demand", "disorder", "faults", "delta"}
		if ablation != "all" {
			fn, ok := all[ablation]
			if !ok {
				return fmt.Errorf("unknown ablation %q", ablation)
			}
			all = map[string]func() (string, error){ablation: fn}
			names = []string{ablation}
		}
		for _, n := range names {
			out, err := all[n]()
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
	}
	return nil
}
