// lotec-sim regenerates the paper's evaluation: every figure of §5, the
// headline protocol comparison, and the ablations DESIGN.md calls out.
//
// Usage:
//
//	lotec-sim -figure all        # Figures 2–8 plus the RC extension
//	lotec-sim -figure 3          # one figure
//	lotec-sim -headline          # §5 aggregate byte ratios
//	lotec-sim -ablation all      # prediction/granularity/demand/disorder
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lotec/internal/sim"
)

func main() {
	figure := flag.String("figure", "", "figure to regenerate: 2..8, rc, or all")
	headline := flag.Bool("headline", false, "print the §5 headline byte ratios")
	ablation := flag.String("ablation", "", "ablation to run: prediction, granularity, demand, disorder, or all")
	fetchConc := flag.Int("fetch-concurrency", 0, "in-flight per-site page-transfer calls (0 = default 4); trace-invariant")
	flag.Parse()

	if *figure == "" && !*headline && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*figure, *headline, *ablation, *fetchConc); err != nil {
		fmt.Fprintln(os.Stderr, "lotec-sim:", err)
		os.Exit(1)
	}
}

func run(figure string, headline bool, ablation string, fetchConc int) error {
	if figure != "" {
		specs := sim.FigureSpecs()
		if figure != "all" {
			spec, err := sim.FigureByID(figure)
			if err != nil {
				return err
			}
			specs = []sim.FigureSpec{spec}
		}
		for _, spec := range specs {
			t0 := time.Now()
			res, err := sim.RunFigureConfig(spec, sim.Config{FetchConcurrency: fetchConc})
			if err != nil {
				return err
			}
			fmt.Printf("(regenerated in %v)\n%s\n", time.Since(t0).Round(time.Millisecond), res.Render())
		}
	}
	if headline {
		out, err := sim.Headline()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if ablation != "" {
		all := map[string]func() (string, error){
			"prediction":  sim.PredictionWidthAblation,
			"granularity": sim.GranularityAblation,
			"demand":      sim.DemandFetchAblation,
			"disorder":    sim.DisorderAblation,
		}
		names := []string{"prediction", "granularity", "demand", "disorder"}
		if ablation != "all" {
			fn, ok := all[ablation]
			if !ok {
				return fmt.Errorf("unknown ablation %q", ablation)
			}
			all = map[string]func() (string, error){ablation: fn}
			names = []string{ablation}
		}
		for _, n := range names {
			out, err := all[n]()
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
	}
	return nil
}
