// lotec-sim regenerates the paper's evaluation: every figure of §5, the
// headline protocol comparison, and the ablations DESIGN.md calls out.
//
// Usage:
//
//	lotec-sim -figure all        # Figures 2–8 plus the RC extension
//	lotec-sim -figure 3          # one figure
//	lotec-sim -headline          # §5 aggregate byte ratios
//	lotec-sim -ablation all      # prediction/granularity/demand/disorder
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lotec/internal/core"
	"lotec/internal/fault"
	"lotec/internal/ids"
	"lotec/internal/sim"
	"lotec/internal/workload"
)

func main() {
	figure := flag.String("figure", "", "figure to regenerate: 2..8, rc, or all")
	headline := flag.Bool("headline", false, "print the §5 headline byte ratios")
	ablation := flag.String("ablation", "", "ablation to run: prediction, granularity, demand, disorder, faults, delta, or all")
	workloadArg := flag.String("workload", "", "run a spec workload (a preset name or a JSON spec file; see EXPERIMENTS.md) and print per-class KPIs")
	jsonOut := flag.String("json", "", "with -workload: also write machine-readable results (provenance, per-class KPIs, traffic totals) to this file")
	fetchConc := flag.Int("fetch-concurrency", 0, "in-flight per-site page-transfer calls (0 = default 4); trace-invariant")
	delta := flag.String("delta", "on", "sub-page delta transfers: on (default) or off (pre-delta wire traffic, byte-identical)")
	faultPlan := flag.String("fault-plan", "", `network fault plan for -figure and -workload runs: a preset (drop, delay, dup, reorder, partition, crash, chaos) or clause list like "drop(p=0.1);delay(p=0.2,d=1ms)"`)
	faultSeed := flag.Uint64("fault-seed", 1, "seed driving the fault plan's random draws")
	replicas := flag.Int("replicas", 0, "with -workload: run the replicated directory control plane on this many dedicated host nodes (0 = legacy single GDO; replicated runs use 4 shards spread across the hosts)")
	reshard := flag.String("reshard", "", `with -workload and -replicas ≥ 2: hand a shard to another host mid-run, "shard=S,target=NODE,at=DUR" (e.g. "shard=0,target=6,at=2ms")`)
	availability := flag.Bool("availability", false, "run the control-plane availability sweep (primary kill and reshard-under-load at 1, 2 and 3 replicas) and print the table")
	flag.Parse()

	if *figure == "" && !*headline && *ablation == "" && *workloadArg == "" && !*availability {
		flag.Usage()
		os.Exit(2)
	}
	if *delta != "on" && *delta != "off" {
		fmt.Fprintln(os.Stderr, "lotec-sim: -delta must be on or off")
		os.Exit(2)
	}
	if *availability {
		rows, err := sim.RunAvailability(*faultSeed, []int{1, 2, 3})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lotec-sim:", err)
			os.Exit(1)
		}
		fmt.Print(sim.AvailabilityTable(rows))
		return
	}
	if *workloadArg != "" {
		if err := runWorkload(*workloadArg, *jsonOut, *fetchConc, *delta == "off", *faultPlan, *faultSeed, *replicas, *reshard); err != nil {
			fmt.Fprintln(os.Stderr, "lotec-sim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*figure, *headline, *ablation, *fetchConc, *delta == "off", *faultPlan, *faultSeed); err != nil {
		fmt.Fprintln(os.Stderr, "lotec-sim:", err)
		os.Exit(1)
	}
}

// simReport is lotec-sim's machine-readable -workload output: everything
// needed to reproduce the run (spec name, hash, seeds) plus what it did.
type simReport struct {
	Provenance workload.Provenance `json:"provenance"`
	Protocol   string              `json:"protocol"`
	Roots      int                 `json:"roots"`
	KPIs       []workload.ClassKPI `json:"kpis"`
	BytesMoved int64               `json:"bytes_moved"`
	Msgs       int                 `json:"msgs"`
}

// parseReshard decodes the -reshard clause "shard=S,target=NODE,at=DUR".
func parseReshard(s string) (shard int, target ids.NodeID, at time.Duration, err error) {
	shard, target, at = -1, 0, -1
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("-reshard: %q is not key=value", part)
		}
		switch k {
		case "shard":
			_, err = fmt.Sscanf(v, "%d", &shard)
		case "target":
			var n int
			_, err = fmt.Sscanf(v, "%d", &n)
			target = ids.NodeID(n)
		case "at":
			at, err = time.ParseDuration(v)
		default:
			return 0, 0, 0, fmt.Errorf("-reshard: unknown key %q", k)
		}
		if err != nil {
			return 0, 0, 0, fmt.Errorf("-reshard: %s: %w", k, err)
		}
	}
	if shard < 0 || target == 0 || at < 0 {
		return 0, 0, 0, fmt.Errorf("-reshard: need shard=S,target=NODE,at=DUR, got %q", s)
	}
	return shard, target, at, nil
}

// runWorkload compiles a spec and runs it on the simulator under LOTEC,
// printing the per-class KPI table and optionally a JSON report.
func runWorkload(arg, jsonPath string, fetchConc int, deltaOff bool, faultPlan string, faultSeed uint64, replicas int, reshard string) error {
	spec, err := workload.LoadSpec(arg)
	if err != nil {
		return err
	}
	w, err := workload.Compile(spec)
	if err != nil {
		return err
	}
	var faults *fault.Plan
	if faultPlan != "" {
		plan, err := fault.Parse(faultPlan, faultSeed)
		if err != nil {
			return fmt.Errorf("fault plan: %w", err)
		}
		faults = plan
	}
	cfg := sim.Config{Protocol: core.LOTEC, FetchConcurrency: fetchConc, DeltaOff: deltaOff, Faults: faults}
	if faults != nil {
		cfg.MaxRetries = 100
	}
	if replicas > 0 {
		cfg.Replicas = replicas
		cfg.DirectoryShards = 4
		cfg.SpreadShards = true
		if cfg.MaxRetries == 0 {
			cfg.MaxRetries = 100
		}
	}
	if reshard != "" && replicas < 2 {
		return fmt.Errorf("-reshard needs -replicas ≥ 2 (another host must be able to receive the shard)")
	}
	t0 := time.Now()
	sw := sim.WrapWorkload(w)
	var c *sim.Cluster
	if reshard != "" {
		shard, target, at, err := parseReshard(reshard)
		if err != nil {
			return err
		}
		cfg.Nodes, cfg.PageSize = w.Cfg.Nodes, w.Cfg.PageSize
		if c, err = sim.NewCluster(cfg); err != nil {
			return err
		}
		objs, err := sw.Install(c)
		if err != nil {
			return err
		}
		if err := sw.SubmitAll(c, objs); err != nil {
			return err
		}
		if err := c.Reshard(at, shard, target); err != nil {
			return err
		}
		if err := c.Run(); err != nil {
			return err
		}
		for _, o := range c.Reshards() {
			if !o.OK {
				return fmt.Errorf("reshard of shard %d to node %d failed: %v", o.Shard, o.Target, o.Err)
			}
			fmt.Printf("reshard: shard %d → node %d, %d state bytes\n", o.Shard, o.Target, o.Bytes)
		}
	} else if c, _, err = sw.Execute(cfg); err != nil {
		return err
	}
	col := workload.NewKPICollector(w.ClassNames)
	for _, r := range c.Results() {
		root := w.Roots[r.Tag.(int)]
		col.Observe(root.Class, int64(r.Done-r.At), r.Err == nil)
	}
	prov := w.Provenance()
	if faults != nil {
		prov.FaultPlan, prov.FaultSeed = faultPlan, faultSeed
	}
	rep := simReport{
		Provenance: prov,
		Protocol:   core.LOTEC.Name(),
		Roots:      len(w.Roots),
		KPIs:       col.Rows(),
		BytesMoved: c.Recorder().Totals().DataBytes,
		Msgs:       c.Recorder().MsgCount(),
	}

	fmt.Printf("workload %s (spec %.12s, seed %d): %d roots on %d nodes (regenerated in %v)\n",
		prov.Workload, prov.SpecHash, prov.Seed, rep.Roots, w.Cfg.Nodes, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("%-10s %8s %8s %8s %10s %12s %12s %12s\n",
		"class", "roots", "commits", "aborts", "abort_rate", "lat_p50", "lat_p95", "lat_p99")
	for _, k := range rep.KPIs {
		fmt.Printf("%-10s %8d %8d %8d %10.3f %12v %12v %12v\n",
			k.Class, k.Roots, k.Commits, k.Aborts, k.AbortRate,
			time.Duration(k.LatP50Ns), time.Duration(k.LatP95Ns), time.Duration(k.LatP99Ns))
	}
	fmt.Printf("traffic: %d data bytes, %d msgs\n", rep.BytesMoved, rep.Msgs)

	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

func run(figure string, headline bool, ablation string, fetchConc int, deltaOff bool, faultPlan string, faultSeed uint64) error {
	var faults *fault.Plan
	if faultPlan != "" {
		plan, err := fault.Parse(faultPlan, faultSeed)
		if err != nil {
			return fmt.Errorf("fault plan: %w", err)
		}
		faults = plan
	}
	if figure != "" {
		specs := sim.FigureSpecs()
		if figure != "all" {
			spec, err := sim.FigureByID(figure)
			if err != nil {
				return err
			}
			specs = []sim.FigureSpec{spec}
		}
		for _, spec := range specs {
			t0 := time.Now()
			res, err := sim.RunFigureConfig(spec, sim.Config{FetchConcurrency: fetchConc, DeltaOff: deltaOff, Faults: faults})
			if err != nil {
				return err
			}
			fmt.Printf("(regenerated in %v)\n%s\n", time.Since(t0).Round(time.Millisecond), res.Render())
		}
	}
	if headline {
		out, err := sim.Headline()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if ablation != "" {
		all := map[string]func() (string, error){
			"prediction":  sim.PredictionWidthAblation,
			"granularity": sim.GranularityAblation,
			"demand":      sim.DemandFetchAblation,
			"disorder":    sim.DisorderAblation,
			"faults":      sim.FaultSweepAblation,
			"delta":       sim.DeltaAblation,
		}
		names := []string{"prediction", "granularity", "demand", "disorder", "faults", "delta"}
		if ablation != "all" {
			fn, ok := all[ablation]
			if !ok {
				return fmt.Errorf("unknown ablation %q", ablation)
			}
			all = map[string]func() (string, error){ablation: fn}
			names = []string{ablation}
		}
		for _, n := range names {
			out, err := all[n]()
			if err != nil {
				return err
			}
			fmt.Println(out)
		}
	}
	return nil
}
