// lotec-node runs one LOTEC data node of a TCP deployment, serving the
// built-in demo bank schema (an Account class with deposit/withdraw/peek
// and a Teller whose transfer nests sub-transactions). Applications embed
// the library directly to serve their own classes; this binary exists so a
// real multi-process cluster can be stood up and driven from the shell.
//
// Serve:
//
//	lotec-node -id 1 -addr-index 0 -gdo host0:7100 -nodes host1:7101,host2:7102
//
// Drive (client mode):
//
//	lotec-node -call host1:7101 -node 1 -obj 1 -method deposit -amount 25
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lotec"
	"lotec/internal/workload"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func dec64(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// demoSchema is the bank schema every lotec-node process serves.
func demoSchema() (*lotec.Class, error) {
	return lotec.NewClass(1, "Account").
		Attr("balance", 8).
		Attr("statement", 8192).
		Method(lotec.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Method(lotec.MethodSpec{Name: "withdraw", Writes: []string{"balance"}}).
		Method(lotec.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Build()
}

func registerDemo(n *lotec.Node, cls *lotec.Class) error {
	if err := n.AddClass(cls); err != nil {
		return err
	}
	if err := n.OnMethod(cls, "deposit", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		next := dec64(cur) + dec64(ctx.Arg())
		if err := ctx.Write("balance", i64(next)); err != nil {
			return err
		}
		ctx.SetResult(i64(next))
		return nil
	}); err != nil {
		return err
	}
	if err := n.OnMethod(cls, "withdraw", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		if dec64(cur) < dec64(ctx.Arg()) {
			return fmt.Errorf("insufficient funds: %d < %d", dec64(cur), dec64(ctx.Arg()))
		}
		next := dec64(cur) - dec64(ctx.Arg())
		if err := ctx.Write("balance", i64(next)); err != nil {
			return err
		}
		ctx.SetResult(i64(next))
		return nil
	}); err != nil {
		return err
	}
	return n.OnMethod(cls, "peek", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	})
}

func main() {
	id := flag.Int("id", 0, "this node's ID (1-based)")
	gdoAddr := flag.String("gdo", "", "GDO directory address")
	nodes := flag.String("nodes", "", "comma-separated data node addresses, in node-ID order")
	protocol := flag.String("protocol", "LOTEC", "consistency protocol: COTEC, OTEC, LOTEC or RC")
	objects := flag.Int("objects", 4, "demo accounts to create (owned round-robin)")
	shards := flag.Int("shards", 1, "directory partitions; must match the lotec-gdo process")
	fetchConc := flag.Int("fetch-concurrency", 0, "in-flight per-site page-transfer calls (0 = default 4)")
	delta := flag.String("delta", "on", "sub-page delta transfers: on (default) or off; must match cluster-wide")
	faultPlan := flag.String("fault-plan", "", `inject deterministic network faults: a preset (drop, delay, dup, reorder, chaos) or clause list like "drop(p=0.1);delay(p=0.2,d=1ms)"`)
	faultSeed := flag.Uint64("fault-seed", 1, "seed driving the fault plan's random draws")

	call := flag.String("call", "", "client mode: node address to dial")
	node := flag.Int("node", 1, "client mode: node ID at -call")
	obj := flag.Int64("obj", 1, "client mode: object ID")
	method := flag.String("method", "peek", "client mode: method to invoke")
	amount := flag.Int64("amount", 0, "client mode: amount argument")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON startup record (workload name, spec hash, seeds) instead of the plain banner")
	flag.Parse()

	if *delta != "on" && *delta != "off" {
		fmt.Fprintln(os.Stderr, "lotec-node: -delta must be on or off")
		os.Exit(2)
	}
	if err := run(*id, *gdoAddr, *nodes, *protocol, *objects, *shards, *fetchConc, *delta == "off", *faultPlan, *faultSeed, *call, *node, *obj, *method, *amount, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "lotec-node:", err)
		os.Exit(1)
	}
}

// nodeReport is lotec-node's -json startup record: enough to identify what
// this process serves and reproduce its behaviour (the demo schema is the
// binary's only workload; the fault seed is its only random draw).
type nodeReport struct {
	Provenance workload.Provenance `json:"provenance"`
	Node       int                 `json:"node"`
	Addr       string              `json:"addr"`
	Protocol   string              `json:"protocol"`
	Objects    int                 `json:"objects"`
}

func run(id int, gdoAddr, nodes, protocol string, objects, shards, fetchConc int, deltaOff bool, faultPlan string, faultSeed uint64, call string, nodeID int, obj int64, method string, amount int64, jsonOut bool) error {
	if call != "" {
		client, err := lotec.Dial(call, lotec.NodeID(nodeID))
		if err != nil {
			return err
		}
		defer client.Close()
		out, err := client.Run(lotec.ObjectID(obj), method, i64(amount))
		if err != nil {
			return err
		}
		fmt.Printf("%s(O%d, %d) = %d\n", method, obj, amount, dec64(out))
		return nil
	}

	if id < 1 || gdoAddr == "" || nodes == "" {
		return fmt.Errorf("serving requires -id, -gdo and -nodes (or use -call for client mode)")
	}
	p, err := lotec.ProtocolByName(protocol)
	if err != nil {
		return err
	}
	nodeAddrs := strings.Split(nodes, ",")
	topo := lotec.Topology{NodeAddrs: nodeAddrs, GDOAddr: gdoAddr, DirectoryShards: shards}
	n, err := lotec.NewNode(lotec.NodeOptions{
		Topology:         topo,
		Self:             lotec.NodeID(id),
		Protocol:         p,
		FetchConcurrency: fetchConc,
		DeltaOff:         deltaOff,
		FaultPlan:        faultPlan,
		FaultSeed:        faultSeed,
	})
	if err != nil {
		return err
	}
	cls, err := demoSchema()
	if err != nil {
		return err
	}
	if err := registerDemo(n, cls); err != nil {
		return err
	}
	if err := n.Start(); err != nil {
		return err
	}
	defer n.Close()

	// Demo accounts O1..O<objects>, owned round-robin. Every node registers
	// all of them; each registers its own with the GDO.
	for o := 1; o <= objects; o++ {
		owner := lotec.NodeID((o-1)%len(nodeAddrs) + 1)
		if err := n.CreateObject(lotec.ObjectID(o), cls.ID, owner); err != nil {
			return fmt.Errorf("create O%d: %w", o, err)
		}
	}
	if jsonOut {
		// The demo bank schema is this binary's whole workload; hashing it
		// as a spec gives replays the same identity check spec files get.
		rep := nodeReport{
			Provenance: workload.Provenance{
				Workload:  "demo-bank",
				SpecHash:  workload.Spec{Name: "demo-bank"}.Hash(),
				FaultSeed: faultSeed,
				FaultPlan: faultPlan,
			},
			Node:     id,
			Addr:     n.Addr(),
			Protocol: p.Name(),
			Objects:  objects,
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		fmt.Println(string(buf))
	} else {
		fmt.Printf("node %d serving %s at %s (%d demo accounts)\n", id, p.Name(), n.Addr(), objects)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}
