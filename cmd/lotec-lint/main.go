// Command lotec-lint runs the repository's invariant analyzer suite
// (package internal/lint): mapiter, lockheld, wiresync, errdrop,
// detsource, lockorder and hotalloc, plus the //lotec: directive audit.
//
// Usage:
//
//	lotec-lint [-json] [-time] [packages]
//
// Packages default to ./... (every package in the module). Findings are
// printed one per line as `file:line:col: [analyzer] message`, sorted, or
// as a JSON array with -json; -time reports per-analyzer wall-clock
// timings on stderr. The exit status is 1 if any finding is reported, 2 on
// a load or usage error, 0 otherwise — so the command slots directly into
// `make check` and CI.
package main

import (
	"os"

	"lotec/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
