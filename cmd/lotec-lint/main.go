// Command lotec-lint runs the repository's invariant analyzer suite
// (package internal/lint): mapiter, lockheld, wiresync and errdrop.
//
// Usage:
//
//	lotec-lint [-json] [packages]
//
// Packages default to ./... (every package in the module). Findings are
// printed one per line as `file:line:col: [analyzer] message`, sorted, or
// as a JSON array with -json. The exit status is 1 if any finding is
// reported, 2 on a load or usage error, 0 otherwise — so the command
// slots directly into `make check` and CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lotec/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lotec-lint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotec-lint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotec-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lotec-lint: %v\n", err)
		os.Exit(2)
	}

	findings := lint.RunAll(pkgs, lint.All())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "lotec-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "lotec-lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
