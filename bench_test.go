package lotec

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5). Each BenchmarkFigureN executes that figure's workload —
// identical seeded input per protocol — and reports the quantities the
// paper plots as custom metrics:
//
//	data-KB/op    consistency page payload moved (Figures 2–5's y-axis)
//	msgs/op       messages exchanged
//	xfer-ms/op    total message time for the hottest object under the
//	              figure's network (Figures 6–8's y-axis, at 1 µs software
//	              cost; lotec-bench prints the full software-cost sweep)
//
// Run with: go test -bench=. -benchmem
// Regenerate the full printed tables with: go run ./cmd/lotec-sim -figure all

import (
	"fmt"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/o2pl"
	"lotec/internal/pstore"
	"lotec/internal/sim"
	"lotec/internal/txn"
	"lotec/internal/wire"
)

// benchFigure runs one figure's workload per protocol as sub-benchmarks.
func benchFigure(b *testing.B, id string) {
	spec, err := sim.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	protocols := spec.Protocols
	if protocols == nil {
		protocols = core.All()
	}
	w, err := sim.GenerateWorkload(spec.Workload)
	if err != nil {
		b.Fatal(err)
	}
	bw, timeFigure := netmodel.Gigabit, false
	switch id {
	case "6":
		bw, timeFigure = netmodel.Ethernet10, true
	case "7":
		bw, timeFigure = netmodel.Ethernet100, true
	case "8":
		bw, timeFigure = netmodel.Gigabit, true
	}
	_ = timeFigure
	for _, p := range protocols {
		b.Run(p.Name(), func(b *testing.B) {
			var dataBytes, msgs int64
			var xfer time.Duration
			for i := 0; i < b.N; i++ {
				c, objs, err := w.Execute(sim.Config{Protocol: p})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range c.Results() {
					if r.Err != nil {
						b.Fatalf("root failed: %v", r.Err)
					}
				}
				t := c.Recorder().Totals()
				dataBytes, msgs = t.DataBytes, int64(t.Msgs)
				// Hottest object's transfer time at the figure's bandwidth.
				hot, hotBytes := ids.ObjectID(-1), int64(-1)
				for _, o := range objs {
					if s := c.Recorder().Object(o); s.TotalBytes() > hotBytes {
						hotBytes, hot = s.TotalBytes(), o
					}
				}
				xfer = c.Recorder().TransferTime(hot, bw.WithSoftwareCost(time.Microsecond))
			}
			b.ReportMetric(float64(dataBytes)/1024, "data-KB/op")
			b.ReportMetric(float64(msgs), "msgs/op")
			b.ReportMetric(float64(xfer.Microseconds())/1000, "xfer-ms/op")
		})
	}
}

// Figures 2–5: bytes transferred per shared object under the four
// contention/size scenarios.

func BenchmarkFigure2_MediumObjectsHighContention(b *testing.B)     { benchFigure(b, "2") }
func BenchmarkFigure3_LargeObjectsHighContention(b *testing.B)      { benchFigure(b, "3") }
func BenchmarkFigure4_MediumObjectsModerateContention(b *testing.B) { benchFigure(b, "4") }
func BenchmarkFigure5_LargeObjectsModerateContention(b *testing.B)  { benchFigure(b, "5") }

// Figures 6–8: total message time for an arbitrary (hottest) shared object
// at 10 Mbps / 100 Mbps / 1 Gbps across software costs.

func BenchmarkFigure6_TransferTime10Mbps(b *testing.B)  { benchFigure(b, "6") }
func BenchmarkFigure7_TransferTime100Mbps(b *testing.B) { benchFigure(b, "7") }
func BenchmarkFigure8_TransferTime1Gbps(b *testing.B)   { benchFigure(b, "8") }

// BenchmarkExtension_RCComparison runs the §6 Release Consistency variant
// against the three EC protocols.
func BenchmarkExtension_RCComparison(b *testing.B) { benchFigure(b, "rc") }

// BenchmarkHeadline_AggregateBytes reproduces the §5 headline: aggregate
// OTEC/COTEC and LOTEC/OTEC byte ratios over Figures 2–5. Reported as
// ratio×100 metrics.
func BenchmarkHeadline_AggregateBytes(b *testing.B) {
	var oc, lo float64
	for i := 0; i < b.N; i++ {
		var sumC, sumO, sumL int64
		for _, id := range []string{"2", "3", "4", "5"} {
			spec, err := sim.FigureByID(id)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.RunFigure(spec)
			if err != nil {
				b.Fatal(err)
			}
			for _, run := range res.Runs {
				t := run.Recorder.Totals().DataBytes
				switch run.Protocol {
				case "COTEC":
					sumC += t
				case "OTEC":
					sumO += t
				case "LOTEC":
					sumL += t
				}
			}
		}
		oc = float64(sumO) / float64(sumC)
		lo = float64(sumL) / float64(sumO)
	}
	b.ReportMetric(oc*100, "OTEC/COTEC-%")
	b.ReportMetric(lo*100, "LOTEC/OTEC-%")
}

// Ablation benches: the design-choice studies DESIGN.md lists.

// BenchmarkAblation_PredictionWidth measures LOTEC bytes as declared sets
// widen toward the whole object (LOTEC → OTEC degeneration).
func BenchmarkAblation_PredictionWidth(b *testing.B) {
	for _, widen := range []int{0, 2, 8} {
		b.Run(fmt.Sprintf("widen-%d", widen), func(b *testing.B) {
			spec, err := sim.FigureByID("3")
			if err != nil {
				b.Fatal(err)
			}
			cfg := spec.Workload
			cfg.Transactions = 80
			cfg.PredictionWiden = widen
			w, err := sim.GenerateWorkload(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var data int64
			for i := 0; i < b.N; i++ {
				c, _, err := w.Execute(sim.Config{Protocol: core.LOTEC})
				if err != nil {
					b.Fatal(err)
				}
				data = c.Recorder().Totals().DataBytes
			}
			b.ReportMetric(float64(data)/1024, "data-KB/op")
		})
	}
}

// BenchmarkAblation_LockingOverhead reports the §5.1 local/global lock
// operation split on the figure-2 workload.
func BenchmarkAblation_LockingOverhead(b *testing.B) {
	spec, err := sim.FigureByID("2")
	if err != nil {
		b.Fatal(err)
	}
	w, err := sim.GenerateWorkload(spec.Workload)
	if err != nil {
		b.Fatal(err)
	}
	var local, global int64
	for i := 0; i < b.N; i++ {
		c, _, err := w.Execute(sim.Config{Protocol: core.LOTEC})
		if err != nil {
			b.Fatal(err)
		}
		cnt := c.Recorder().Counters()
		local, global = cnt.LocalLockOps, cnt.GlobalLockOps
	}
	b.ReportMetric(float64(local), "local-locks/op")
	b.ReportMetric(float64(global), "global-locks/op")
}

// BenchmarkAblation_ObjectGranularity sweeps object size at constant data
// volume: coarser objects need fewer (global) lock operations (§5.1).
func BenchmarkAblation_ObjectGranularity(b *testing.B) {
	for _, shape := range []struct{ objects, minP, maxP int }{
		{80, 1, 2}, {20, 5, 7}, {10, 11, 13},
	} {
		b.Run(fmt.Sprintf("%dx%d-%dp", shape.objects, shape.minP, shape.maxP), func(b *testing.B) {
			cfg := sim.WorkloadConfig{
				Seed: 77, Objects: shape.objects, MinPages: shape.minP, MaxPages: shape.maxP,
				Transactions: 100, Nodes: 8,
				HotFraction: 0.25, HotWeight: 0.85,
				ArrivalSpacing: 200 * time.Microsecond,
			}
			w, err := sim.GenerateWorkload(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var global, commits int64
			for i := 0; i < b.N; i++ {
				c, _, err := w.Execute(sim.Config{Protocol: core.LOTEC})
				if err != nil {
					b.Fatal(err)
				}
				cnt := c.Recorder().Counters()
				global, commits = cnt.GlobalLockOps, cnt.Commits
			}
			b.ReportMetric(float64(global)/float64(commits), "global-locks/commit")
		})
	}
}

// BenchmarkAblation_DemandFetch measures the §4.3 demand-fetch fallback as
// prediction accuracy degrades (lenient mode).
func BenchmarkAblation_DemandFetch(b *testing.B) {
	for _, prob := range []float64{0, 0.3} {
		b.Run(fmt.Sprintf("mispredict-%.1f", prob), func(b *testing.B) {
			spec, err := sim.FigureByID("2")
			if err != nil {
				b.Fatal(err)
			}
			cfg := spec.Workload
			cfg.Transactions = 80
			cfg.MispredictProb = prob
			w, err := sim.GenerateWorkload(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var demand int64
			for i := 0; i < b.N; i++ {
				c, _, err := w.Execute(sim.Config{Protocol: core.LOTEC, Lenient: true})
				if err != nil {
					b.Fatal(err)
				}
				demand = c.Recorder().Counters().DemandFetches
			}
			b.ReportMetric(float64(demand), "demand-fetches/op")
		})
	}
}

// Micro-benchmarks of the substrates.

// BenchmarkMicro_LocalLockAcquireRelease measures the intra-family fast
// path (Alg 4.1 local arm).
func BenchmarkMicro_LocalLockAcquireRelease(b *testing.B) {
	mgr := txn.NewManager()
	root := mgr.Begin(1)
	entry := o2pl.NewEntry(1, root.Family(), o2pl.Write)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := mgr.BeginChild(root)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := entry.Acquire(child, o2pl.Write); err != nil {
			b.Fatal(err)
		}
		entry.PreCommit(child)
		if err := mgr.PreCommit(child); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_GDOAcquireRelease measures one global lock round trip
// through the directory (Alg 4.2 + 4.4).
func BenchmarkMicro_GDOAcquireRelease(b *testing.B) {
	d := gdo.New(8)
	if err := d.Register(1, 10, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam := ids.FamilyID(i + 1)
		ref := ids.TxRef{Tx: ids.TxID(i + 1), Node: 2}
		if _, _, err := d.Acquire(1, ref, fam, uint64(fam), 2, o2pl.Write); err != nil {
			b.Fatal(err)
		}
		if _, _, err := d.Release(fam, 2, true, []gdo.ObjectRelease{{Obj: 1, Dirty: []ids.PageNum{0}}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_PageStoreWriteUndo measures a shadow-logged page write and
// rollback.
func BenchmarkMicro_PageStoreWriteUndo(b *testing.B) {
	st := pstore.NewStore(4096)
	if err := st.Register(1, 4); err != nil {
		b.Fatal(err)
	}
	if err := st.Materialize(1); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := pstore.NewUndoLog()
		if err := l.SnapshotBefore(st, 1, []ids.PageNum{0}); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Write(1, 0, buf); err != nil {
			b.Fatal(err)
		}
		l.Undo(st)
	}
}

// BenchmarkMicro_WireRoundTrip measures encoding+decoding a page-bearing
// message.
func BenchmarkMicro_WireRoundTrip(b *testing.B) {
	m := &wire.FetchResp{Obj: 1, Pages: []wire.PagePayload{
		{Page: 0, Version: 3, Data: make([]byte, 4096)},
		{Page: 1, Version: 3, Data: make([]byte, 4096)},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := wire.Encode(wire.Envelope{ReqID: uint64(i), From: 1, To: 2}, m)
		if _, _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(m.Size()))
}

// BenchmarkMicro_EndToEndTransaction measures one whole cross-node root
// transaction (lock round trip + transfer + commit) on a 2-node simulated
// cluster.
func BenchmarkMicro_EndToEndTransaction(b *testing.B) {
	w, err := sim.GenerateWorkload(sim.WorkloadConfig{
		Seed: 5, Objects: 2, MinPages: 2, MaxPages: 2,
		Transactions: 1, Nodes: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Execute(sim.Config{Protocol: core.LOTEC}); err != nil {
			b.Fatal(err)
		}
	}
}
