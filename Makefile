# Tier-1 gate: everything must build, vet clean, lint clean, and pass
# under the race detector before a change lands.
.PHONY: check build vet lint lint-fixtures test bench bench-allocs bench-smoke calibrate-smoke chaos

check: build vet lint lint-fixtures test bench-allocs bench-smoke calibrate-smoke chaos

build:
	go build ./...

vet:
	go vet ./...

# Repo-specific invariant analyzers (determinism taint, lock discipline,
# static lock ordering, hot-path allocations, wire-protocol sync, dropped
# errors). Exits non-zero on any finding; per-analyzer timings on stderr.
lint:
	go run ./cmd/lotec-lint -time ./...

# Analyzer self-test: every analyzer must produce exactly the expected
# diagnostics on its positive fixtures (including the -json golden file)
# and stay silent on the negative ones.
lint-fixtures:
	go test -run 'TestMapIter|TestLockHeld|TestWireSync|TestErrDrop|TestDetSource|TestLockOrder|TestHotAlloc|TestDirectiveAudit|TestMain' ./internal/lint/

test:
	go test -race ./...

# Regenerate BENCH_results.json (figure workload timings, transfer-stage
# breakdown, fetch-concurrency sweep, sharded directory throughput).
bench:
	go run ./cmd/lotec-bench -figure 3 -json BENCH_results.json

# Steady-state allocation gates (testing.AllocsPerRun) over the
# //lotec:noalloc surfaces: pooled frame get/release, EncodeFrame,
# ReadFrame, DecodeView, and the directory's immediate-grant fast path.
# Run without -race: the poison pass and detector instrumentation change
# the allocation behavior under test.
bench-allocs:
	go test -run 'TestAllocs' ./internal/wire/ ./internal/directory/

# Fast data-plane invariant check: the byte/message trace must be identical
# at FetchConcurrency 1 and 4, and the modeled gather wall-clock must
# improve when transfers fan out. With a committed BENCH_results.json the
# smoke run also regresses bytes_moved/ns_per_op/allocs_per_op for the
# figure rows and the per-path perf/ ledger rows.
bench-smoke:
	go run ./cmd/lotec-bench -figure 3 -smoke

# Observe-predict-calibrate gate: the zipf-hot spec runs on the simulator
# (dedicated-directory topology) and on a real in-process TCP cluster;
# commit/abort counts must match exactly and traffic volume must agree
# within tolerance. Writes the predicted-vs-measured table into a scratch
# file so the committed BENCH_results.json is not touched by CI.
calibrate-smoke:
	go run ./cmd/lotec-bench -calibrate -workload zipf-hot -json /tmp/lotec-calibration.json

# Chaos harness, full matrix: 40 seeds × 7 fault plans × 3 protocols under
# the race detector, plus the zero-fault trace-equivalence gate. A failing
# cell reproduces with: go test ./internal/sim -run TestChaos -chaos-seed=<n>
# (package path first: custom test-binary flags must follow it).
chaos:
	go test -race -run 'TestChaos|TestZeroFaultPlanTraceEquivalence' ./internal/sim/ -chaos-full
