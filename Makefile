# Tier-1 gate: everything must build, vet clean, and pass under the race
# detector before a change lands.
.PHONY: check build vet test bench

check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -race ./...

# Regenerate BENCH_results.json (figure workload timings + sharded
# directory throughput).
bench:
	go run ./cmd/lotec-bench -figure 3 -json BENCH_results.json
