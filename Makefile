# Tier-1 gate: everything must build, vet clean, lint clean, and pass
# under the race detector before a change lands.
.PHONY: check build vet lint test bench

check: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# Repo-specific invariant analyzers (determinism, lock discipline,
# wire-protocol sync, dropped errors). Exits non-zero on any finding.
lint:
	go run ./cmd/lotec-lint ./...

test:
	go test -race ./...

# Regenerate BENCH_results.json (figure workload timings + sharded
# directory throughput).
bench:
	go run ./cmd/lotec-bench -figure 3 -json BENCH_results.json
