// Quickstart: a four-node simulated LOTEC cluster running bank-account
// transactions. Shows the whole programming model in one file: declare a
// class with conservative access sets, register Go method bodies, create an
// object, and execute root transactions at different nodes — consistency
// maintenance is fully automatic.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"lotec"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func dec64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func main() {
	cluster, err := lotec.NewCluster(lotec.Options{Nodes: 4, Protocol: lotec.LOTEC})
	if err != nil {
		log.Fatal(err)
	}

	// An Account has a hot 8-byte balance and a cold 8 KiB statement
	// history. deposit declares it only touches the balance, so LOTEC's
	// prediction moves one page per cross-node transfer instead of three.
	account, err := lotec.NewClass(1, "Account").
		Attr("balance", 8).
		Attr("history", 8192).
		Method(lotec.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Method(lotec.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	cluster.MustAddClass(account)

	cluster.MustOnMethod(account, "deposit", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		next := dec64(cur) + dec64(ctx.Arg())
		if err := ctx.Write("balance", i64(next)); err != nil {
			return err
		}
		ctx.SetResult(i64(next))
		return nil
	})
	cluster.MustOnMethod(account, "peek", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	})

	acct, err := cluster.NewObject(account.ID, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Deposits from every node: each transaction acquires the object's
	// lock, pulls the pages it needs from wherever the newest copies live,
	// and commits through the GDO.
	for node := lotec.NodeID(1); node <= 4; node++ {
		out, err := cluster.Exec(node, acct, "deposit", i64(25))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %d deposited 25 → balance %d\n", node, dec64(out))
	}

	out, err := cluster.Exec(2, acct, "peek", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final balance read at node 2: %d\n", dec64(out))

	st := cluster.ObjectStats(acct)
	fmt.Printf("consistency traffic for the account: %d messages, %d data bytes, %d control bytes\n",
		st.Msgs, st.DataBytes, st.ControlBytes)
	fmt.Printf("total transfer time at gigabit + 1µs software cost: %v\n",
		cluster.TransferTime(acct, lotec.Gigabit.WithSoftwareCost(1000)))
}
