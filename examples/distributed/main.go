// Distributed: the same LOTEC engine over real TCP. This example starts a
// GDO directory server and three node servers on loopback (in one process
// for convenience — each component would normally be its own process, as
// cmd/lotec-gdo and cmd/lotec-node run them), then drives transactions
// through network clients and shows the data following the lock around the
// cluster.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"net"

	"lotec"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func dec64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// reserveAddrs grabs n free loopback addresses.
func reserveAddrs(n int) ([]string, error) {
	var addrs []string
	var listeners []net.Listener
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return addrs, nil
}

// counterClass is the shared schema every node compiles in.
func counterClass() (*lotec.Class, error) {
	return lotec.NewClass(1, "Counter").
		Attr("value", 8).
		Attr("log", 2048).
		Method(lotec.MethodSpec{Name: "add", Writes: []string{"value"}}).
		Method(lotec.MethodSpec{Name: "get", Reads: []string{"value"}}).
		Build()
}

func setupNode(topo lotec.Topology, self lotec.NodeID) (*lotec.Node, error) {
	n, err := lotec.NewNode(lotec.NodeOptions{Topology: topo, Self: self, Protocol: lotec.LOTEC})
	if err != nil {
		return nil, err
	}
	cls, err := counterClass()
	if err != nil {
		return nil, err
	}
	if err := n.AddClass(cls); err != nil {
		return nil, err
	}
	if err := n.OnMethod(cls, "add", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("value")
		if err != nil {
			return err
		}
		next := dec64(cur) + dec64(ctx.Arg())
		if err := ctx.Write("value", i64(next)); err != nil {
			return err
		}
		ctx.SetResult(i64(next))
		return nil
	}); err != nil {
		return nil, err
	}
	if err := n.OnMethod(cls, "get", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("value")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	}); err != nil {
		return nil, err
	}
	return n, nil
}

func main() {
	addrs, err := reserveAddrs(4)
	if err != nil {
		log.Fatal(err)
	}
	topo := lotec.Topology{NodeAddrs: addrs[:3], GDOAddr: addrs[3]}

	gdo, err := lotec.StartGDO(topo)
	if err != nil {
		log.Fatal(err)
	}
	defer gdo.Close()
	fmt.Printf("GDO directory serving at %s\n", gdo.Addr())

	var nodes []*lotec.Node
	for i := lotec.NodeID(1); i <= 3; i++ {
		n, err := setupNode(topo, i)
		if err != nil {
			log.Fatal(err)
		}
		if err := n.Start(); err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		fmt.Printf("node %d serving at %s\n", i, n.Addr())
	}

	// The counter lives at node 1; every node registers it, the owner
	// also registers it with the GDO.
	const counter = lotec.ObjectID(1)
	cls, _ := counterClass()
	if err := nodes[0].CreateObject(counter, cls.ID, 1); err != nil {
		log.Fatal(err)
	}
	for _, n := range nodes[1:] {
		if err := n.CreateObject(counter, cls.ID, 1); err != nil {
			log.Fatal(err)
		}
	}

	// Clients connect to different nodes and increment the same object:
	// the lock (and the hot page) migrates over real sockets.
	for i := 0; i < 3; i++ {
		client, err := lotec.Dial(topo.NodeAddrs[i], lotec.NodeID(i+1))
		if err != nil {
			log.Fatal(err)
		}
		out, err := client.Run(counter, "add", i64(int64(10*(i+1))))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client via node %d: add %d → counter %d\n", i+1, 10*(i+1), dec64(out))
		_ = client.Close()
	}

	client, err := lotec.Dial(topo.NodeAddrs[2], 3)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	out, err := client.Run(counter, "get", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final counter read through node 3: %d (want 60)\n", dec64(out))
}
