// Banking: nested object transactions in the paper's sense — a Teller
// object's transfer method invokes withdraw and deposit as closed nested
// sub-transactions on two Account objects. A failed withdraw aborts only
// its own sub-transaction; an overdrawn transfer aborts the whole family
// and rolls everything back. The same workload is run under all four
// protocols to compare consistency traffic.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"time"

	"lotec"
)

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func dec64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// transferArg encodes (from, to, amount).
func transferArg(from, to lotec.ObjectID, amount int64) []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint64(b, uint64(from))
	binary.LittleEndian.PutUint64(b[8:], uint64(to))
	binary.LittleEndian.PutUint64(b[16:], uint64(amount))
	return b
}

var errInsufficient = errors.New("insufficient funds")

// buildBank assembles the schema and bodies on a cluster.
func buildBank(cluster *lotec.Cluster) (account, teller *lotec.Class, err error) {
	account, err = lotec.NewClass(1, "Account").
		Attr("balance", 8).
		Attr("owner", 64).
		Attr("statement", 4096).
		Method(lotec.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Method(lotec.MethodSpec{Name: "withdraw", Writes: []string{"balance"}}).
		Method(lotec.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Build()
	if err != nil {
		return nil, nil, err
	}
	// The teller's transfer method invokes sub-transactions on the two
	// accounts; its own object only records a counter.
	teller, err = lotec.NewClass(2, "Teller").
		Attr("transfers", 8).
		Method(lotec.MethodSpec{Name: "transfer", Writes: []string{"transfers"}}).
		Build()
	if err != nil {
		return nil, nil, err
	}
	if err := cluster.AddClass(account); err != nil {
		return nil, nil, err
	}
	if err := cluster.AddClass(teller); err != nil {
		return nil, nil, err
	}

	must := func(e error) {
		if e != nil {
			log.Fatal(e)
		}
	}
	must(cluster.OnMethod(account, "deposit", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		return ctx.Write("balance", i64(dec64(cur)+dec64(ctx.Arg())))
	}))
	must(cluster.OnMethod(account, "withdraw", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		if dec64(cur) < dec64(ctx.Arg()) {
			return errInsufficient
		}
		return ctx.Write("balance", i64(dec64(cur)-dec64(ctx.Arg())))
	}))
	must(cluster.OnMethod(account, "peek", func(ctx *lotec.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	}))
	must(cluster.OnMethod(teller, "transfer", func(ctx *lotec.Ctx) error {
		from := lotec.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()))
		to := lotec.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()[8:]))
		amount := int64(binary.LittleEndian.Uint64(ctx.Arg()[16:]))
		// Withdraw first; if it aborts, the whole transfer aborts and the
		// closed-nesting rules guarantee nothing is visible outside.
		if _, err := ctx.Invoke(from, "withdraw", i64(amount)); err != nil {
			return fmt.Errorf("transfer %d: %w", amount, err)
		}
		if _, err := ctx.Invoke(to, "deposit", i64(amount)); err != nil {
			return err
		}
		cnt, err := ctx.Read("transfers")
		if err != nil {
			return err
		}
		return ctx.Write("transfers", i64(dec64(cnt)+1))
	}))
	return account, teller, nil
}

func runWorkload(p lotec.Protocol) (moved int64, msgs int, err error) {
	cluster, err := lotec.NewCluster(lotec.Options{Nodes: 4, Protocol: p})
	if err != nil {
		return 0, 0, err
	}
	account, teller, err := buildBank(cluster)
	if err != nil {
		return 0, 0, err
	}
	// Four accounts owned around the cluster, one teller per node.
	var accts []lotec.ObjectID
	for n := lotec.NodeID(1); n <= 4; n++ {
		a, err := cluster.NewObject(account.ID, n)
		if err != nil {
			return 0, 0, err
		}
		accts = append(accts, a)
	}
	var tellers []lotec.ObjectID
	for n := lotec.NodeID(1); n <= 4; n++ {
		tl, err := cluster.NewObject(teller.ID, n)
		if err != nil {
			return 0, 0, err
		}
		tellers = append(tellers, tl)
	}
	// Seed balances.
	for _, a := range accts {
		if _, err := cluster.Exec(1, a, "deposit", i64(100)); err != nil {
			return 0, 0, err
		}
	}
	// Concurrent transfers from every node; lower-indexed account is
	// always debited first (ordered acquisition avoids deadlocks).
	for i := 0; i < 24; i++ {
		n := lotec.NodeID(i%4 + 1)
		from, to := accts[i%4], accts[(i+1)%4]
		if from > to {
			from, to = to, from
		}
		if err := cluster.Submit(time.Duration(i)*200*time.Microsecond,
			n, tellers[i%4], "transfer", transferArg(from, to, 5)); err != nil {
			return 0, 0, err
		}
	}
	if err := cluster.Run(); err != nil {
		return 0, 0, err
	}
	for _, r := range cluster.Results() {
		if r.Err != nil {
			return 0, 0, fmt.Errorf("%s: %w", r.Method, r.Err)
		}
	}
	// Conservation: total money is unchanged.
	var total int64
	for _, a := range accts {
		out, err := cluster.Exec(1, a, "peek", nil)
		if err != nil {
			return 0, 0, err
		}
		total += dec64(out)
	}
	if total != 400 {
		return 0, 0, fmt.Errorf("money not conserved: %d", total)
	}
	t := cluster.TotalStats()
	return t.DataBytes, t.Msgs, nil
}

func main() {
	// Show an overdraft aborting a whole nested transfer.
	cluster, err := lotec.NewCluster(lotec.Options{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	account, teller, err := buildBank(cluster)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := cluster.NewObject(account.ID, 1)
	b, _ := cluster.NewObject(account.ID, 2)
	tl, _ := cluster.NewObject(teller.ID, 1)
	if _, err := cluster.Exec(1, a, "deposit", i64(30)); err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Exec(1, tl, "transfer", transferArg(a, b, 100)); err != nil {
		fmt.Printf("overdrawn transfer correctly aborted: %v\n", err)
	}
	out, _ := cluster.Exec(1, a, "peek", nil)
	fmt.Printf("balance after aborted transfer (must be 30): %d\n\n", dec64(out))

	// Compare protocols on the same concurrent transfer mix.
	fmt.Printf("%-8s%14s%10s\n", "Protocol", "DataBytes", "Msgs")
	for _, p := range []lotec.Protocol{lotec.COTEC, lotec.OTEC, lotec.LOTEC, lotec.RC} {
		moved, msgs, err := runWorkload(p)
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		fmt.Printf("%-8s%14d%10d\n", p.Name(), moved, msgs)
	}
}
