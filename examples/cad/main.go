// CAD: the domain the paper's protocol was originally developed for
// ("computer aided design environments", §5.1 footnote) — large multi-page
// design objects whose methods touch small, predictable subsets.
//
// A Part object holds a big mesh, a transform matrix, bounding-box data and
// metadata. Engineering edits (moving a part, renaming it, bumping a
// revision) touch one or two small attributes; only re-meshing touches the
// bulk geometry. LOTEC's per-method prediction moves just the touched pages
// between workstations, which is exactly where it beats OTEC and COTEC.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"lotec"
)

func f64(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v*1000))
	return b
}

func main() {
	results := map[string][2]int64{}
	for _, p := range []lotec.Protocol{lotec.COTEC, lotec.OTEC, lotec.LOTEC} {
		bytes, msgs, err := runDesignSession(p)
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		results[p.Name()] = [2]int64{bytes, msgs}
	}
	fmt.Printf("%-8s%14s%10s\n", "Protocol", "DataBytes", "Msgs")
	for _, n := range []string{"COTEC", "OTEC", "LOTEC"} {
		fmt.Printf("%-8s%14d%10d\n", n, results[n][0], results[n][1])
	}
	fmt.Println("\nLOTEC moves only the transform/metadata pages for the small edits;")
	fmt.Println("COTEC re-ships the whole 72 KiB part on every cross-workstation touch.")
}

func runDesignSession(p lotec.Protocol) (dataBytes, msgs int64, err error) {
	cluster, err := lotec.NewCluster(lotec.Options{Nodes: 4, Protocol: p})
	if err != nil {
		return 0, 0, err
	}

	// A Part is ~18 pages: 16 pages of mesh, plus transform, bounds and
	// metadata sharing the leading pages.
	part, err := lotec.NewClass(1, "Part").
		Attr("name", 256).
		Attr("revision", 8).
		Attr("transform", 128). // 4×4 matrix + flags
		Attr("bounds", 48).
		Attr("mesh", 65536).
		Method(lotec.MethodSpec{Name: "move", Reads: []string{"bounds"}, Writes: []string{"transform"}}).
		Method(lotec.MethodSpec{Name: "rename", Writes: []string{"name", "revision"}}).
		Method(lotec.MethodSpec{Name: "remesh", Reads: []string{"transform"}, Writes: []string{"mesh", "bounds", "revision"}}).
		Method(lotec.MethodSpec{Name: "inspect", Reads: []string{"name", "revision", "transform", "bounds"}}).
		Build()
	if err != nil {
		return 0, 0, err
	}
	if err := cluster.AddClass(part); err != nil {
		return 0, 0, err
	}

	assembly, err := lotec.NewClass(2, "Assembly").
		Attr("partCount", 8).
		Attr("layout", 1024).
		Method(lotec.MethodSpec{Name: "rearrange", Writes: []string{"layout"}}).
		Build()
	if err != nil {
		return 0, 0, err
	}
	if err := cluster.AddClass(assembly); err != nil {
		return 0, 0, err
	}

	reg := func(cls *lotec.Class, name string, fn lotec.MethodFunc) {
		if err := cluster.OnMethod(cls, name, fn); err != nil {
			log.Fatal(err)
		}
	}
	reg(part, "move", func(ctx *lotec.Ctx) error {
		if _, err := ctx.Read("bounds"); err != nil {
			return err
		}
		return ctx.WriteAt("transform", 0, ctx.Arg())
	})
	reg(part, "rename", func(ctx *lotec.Ctx) error {
		if err := ctx.WriteAt("name", 0, ctx.Arg()); err != nil {
			return err
		}
		rev, err := ctx.Read("revision")
		if err != nil {
			return err
		}
		rev[0]++
		return ctx.Write("revision", rev)
	})
	reg(part, "remesh", func(ctx *lotec.Ctx) error {
		if _, err := ctx.Read("transform"); err != nil {
			return err
		}
		// Regenerate a slab of the mesh deterministically from the arg.
		slab := make([]byte, 4096)
		for i := range slab {
			slab[i] = ctx.Arg()[0] + byte(i)
		}
		if err := ctx.WriteAt("mesh", int(ctx.Arg()[0])*64, slab); err != nil {
			return err
		}
		if err := ctx.WriteAt("bounds", 0, ctx.Arg()[:8]); err != nil {
			return err
		}
		rev, err := ctx.Read("revision")
		if err != nil {
			return err
		}
		rev[0]++
		return ctx.Write("revision", rev)
	})
	reg(part, "inspect", func(ctx *lotec.Ctx) error {
		for _, a := range []string{"name", "revision", "transform", "bounds"} {
			if _, err := ctx.Read(a); err != nil {
				return err
			}
		}
		return nil
	})
	reg(assembly, "rearrange", func(ctx *lotec.Ctx) error {
		// The assembly rearrangement moves each part it is given.
		arg := ctx.Arg()
		for off := 8; off+8 <= len(arg); off += 8 {
			obj := lotec.ObjectID(binary.LittleEndian.Uint64(arg[off:]))
			if _, err := ctx.Invoke(obj, "move", f64(float64(off))); err != nil {
				return err
			}
		}
		return ctx.WriteAt("layout", 0, arg[:8])
	})

	// Four parts owned by four workstations, one shared assembly.
	var parts []lotec.ObjectID
	for n := lotec.NodeID(1); n <= 4; n++ {
		obj, err := cluster.NewObject(part.ID, n)
		if err != nil {
			return 0, 0, err
		}
		parts = append(parts, obj)
	}
	asm, err := cluster.NewObject(assembly.ID, 1)
	if err != nil {
		return 0, 0, err
	}

	// A design session: engineers at different workstations move, rename
	// and inspect parts; occasional remeshes touch the bulk pages; the
	// assembly rearrangement fans out nested moves.
	step := 0
	submit := func(node lotec.NodeID, obj lotec.ObjectID, method string, arg []byte) {
		if err := cluster.Submit(time.Duration(step)*300*time.Microsecond, node, obj, method, arg); err != nil {
			log.Fatal(err)
		}
		step++
	}
	for round := 0; round < 6; round++ {
		for i, obj := range parts {
			node := lotec.NodeID((i+round)%4 + 1)
			switch round % 3 {
			case 0:
				submit(node, obj, "move", f64(float64(round)))
			case 1:
				submit(node, obj, "inspect", nil)
			default:
				name := make([]byte, 256)
				copy(name, fmt.Sprintf("part-%d-%d", i, round))
				submit(node, obj, "rename", name)
			}
		}
		if round%2 == 1 {
			submit(lotec.NodeID(round%4+1), parts[round%4], "remesh", []byte{byte(round), 0, 0, 0, 0, 0, 0, 0})
		}
	}
	// One assembly-wide rearrangement with nested moves on sorted parts.
	arg := make([]byte, 8+8*len(parts))
	for i, p := range parts {
		binary.LittleEndian.PutUint64(arg[8+8*i:], uint64(p))
	}
	submit(2, asm, "rearrange", arg)

	if err := cluster.Run(); err != nil {
		return 0, 0, err
	}
	for _, r := range cluster.Results() {
		if r.Err != nil {
			return 0, 0, fmt.Errorf("%s on %v: %w", r.Method, r.Obj, r.Err)
		}
	}
	t := cluster.TotalStats()
	return t.DataBytes, int64(t.Msgs), nil
}
