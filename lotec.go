// Package lotec is a Go implementation of LOTEC — Lazy Object
// Transactional Entry Consistency — the software-only DSM consistency
// protocol for nested object transactions described by Graham and Sui
// (PODC 1999), together with the protocols it is evaluated against (COTEC,
// OTEC, and a Release Consistency extension) and every substrate the paper
// depends on: Moss-style closed nested transactions, nested object
// two-phase locking with lock inheritance and retention, a global directory
// of objects (GDO) with page maps, paged object memory with shadow-page
// undo, conservative per-method access prediction, and a deterministic
// distributed-system simulator.
//
// # Programming model
//
// Applications declare object classes — attributes plus methods with
// conservative read/write attribute sets (the artifact the paper's compiler
// derives via attribute access analysis) — and register a Go body per
// method. Every method invocation runs as a [sub-]transaction: the runtime
// acquires the object's lock at entry and releases it per nested O2PL at
// exit, so consistency maintenance is fully automatic, exactly as §3.5 of
// the paper intends. Invoking another object's method from a body creates a
// closed nested sub-transaction whose abort rolls back only its own
// effects.
//
// # Quick start
//
//	cluster, _ := lotec.NewCluster(lotec.Options{Nodes: 4, Protocol: lotec.LOTEC})
//	account, _ := lotec.NewClass(1, "Account").
//		Attr("balance", 8).
//		Method(lotec.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
//		Build()
//	cluster.MustAddClass(account)
//	cluster.MustOnMethod(account, "deposit", func(ctx *lotec.Ctx) error {
//		cur, _ := ctx.Read("balance")
//		return ctx.Write("balance", add(cur, ctx.Arg()))
//	})
//	obj, _ := cluster.NewObject(account.ID, 1)
//	out, err := cluster.Exec(2, obj, "deposit", amount) // runs at node 2
//
// The same engine runs over TCP for real distribution: see StartGDO,
// StartNode and Dial.
package lotec

import (
	"lotec/internal/core"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/node"
	"lotec/internal/o2pl"
	"lotec/internal/schema"
	"lotec/internal/stats"
)

// Identifier types.
type (
	// NodeID identifies a site in the cluster (1-based).
	NodeID = ids.NodeID
	// ObjectID identifies a shared object.
	ObjectID = ids.ObjectID
	// ClassID identifies an object class.
	ClassID = ids.ClassID
)

// Schema types: classes are built with NewClass and declared methods carry
// the conservative access sets LOTEC's prediction consumes.
type (
	// Class is a built object class.
	Class = schema.Class
	// ClassBuilder assembles a Class.
	ClassBuilder = schema.ClassBuilder
	// MethodSpec declares one method and its conservative access sets.
	MethodSpec = schema.MethodSpec
)

// NewClass starts building a class with the given ID and name.
func NewClass(id ClassID, name string) *ClassBuilder {
	return schema.NewClassBuilder(id, name)
}

// Execution types.
type (
	// Ctx is a method body's handle on its sub-transaction.
	Ctx = node.Ctx
	// MethodFunc is a registered method body.
	MethodFunc = node.MethodFunc
	// InvokeSpec names one child invocation for Ctx.InvokeAll.
	InvokeSpec = node.InvokeSpec
	// InvokeResult is one parallel child's outcome.
	InvokeResult = node.InvokeResult
)

// Protocol selects a consistency protocol.
type Protocol = core.Protocol

// The protocols of the paper's evaluation plus the §6 RC extension.
var (
	// COTEC transfers every page of an object on acquisition (baseline).
	COTEC = core.COTEC
	// OTEC transfers only the pages updated since the acquirer's copies.
	OTEC = core.OTEC
	// LOTEC transfers only updated pages predicted to be needed — the
	// paper's contribution.
	LOTEC = core.LOTEC
	// RC eagerly pushes updates to all caching sites at commit.
	RC = core.RC
)

// ProtocolByName resolves "COTEC", "OTEC", "LOTEC" or "RC".
func ProtocolByName(name string) (Protocol, error) { return core.ByName(name) }

// Network modelling, for simulated clusters and trace pricing.
type (
	// NetParams is a bandwidth + per-message software cost configuration.
	NetParams = netmodel.Params
)

// The paper's three switched-Ethernet presets (Figures 6–8).
var (
	Ethernet10  = netmodel.Ethernet10
	Ethernet100 = netmodel.Ethernet100
	Gigabit     = netmodel.Gigabit
)

// Statistics types.
type (
	// Stats aggregates a run's consistency traffic.
	Stats = stats.ObjStats
	// Counters is the scalar operation counters (§5.1).
	Counters = stats.Counters
)

// Errors surfaced to applications.
var (
	// ErrRecursiveInvocation: a method (transitively) invoked a method on
	// an object whose lock an ancestor transaction holds; the paper
	// precludes mutually recursive invocations (§3.4).
	ErrRecursiveInvocation = o2pl.ErrRecursiveInvocation
	// ErrUndeclaredAccess: a body touched an attribute outside its declared
	// sets while the cluster runs in strict (conservative-compiler) mode.
	ErrUndeclaredAccess = node.ErrUndeclaredAccess
	// ErrDeadlockVictim: the transaction was aborted to break an
	// inter-family deadlock; Exec retries these automatically, so
	// applications only see it when retries are exhausted.
	ErrDeadlockVictim = node.ErrDeadlockVictim
	// ErrRetriesExhausted: a root lost deadlock resolution too many times.
	ErrRetriesExhausted = node.ErrRetriesExhausted
)
